// dhpf::trace — hierarchical span tracing with per-thread flight recorders.
//
// Where dhpf::obs answers "how much, in total?" (counters, accumulated
// timers), this layer answers "when, on which thread, nested inside what?".
// A Span is an RAII begin/end pair recorded into a fixed-capacity per-thread
// ring buffer — a *flight recorder*: writes are wait-free for the owning
// thread (plain slot store + one release publish, no locks, no allocation),
// and when the ring is full the oldest spans are overwritten. Always-on
// tracing is therefore safe in the hottest loops and in the fuzz harness's
// 48-variant cross product: cost is bounded by the ring, not the run length.
//
// Three producers share the one recorder so their spans merge into a single
// timeline: the compiler's passes and sub-phases (codegen::timed_pass and
// DHPF_TRACE_SPAN sites), the mp runtime's per-rank send/recv/wait/compute
// activity (each rank thread labels its ring "rank<r>"), and the simulator.
// Exports live in trace/export.hpp: a merged Chrome-trace JSON and an
// aggregated self-time/total-time profile (`dhpfc --trace-out`, --profile).
//
// Concurrency contract:
//  - begin/end/set_thread_label touch only the calling thread's ring: no
//    synchronization with other writers, ever.
//  - drain()/totals() may run concurrently with writers (the publish is a
//    release store, drain reads with acquire), but a full-fidelity snapshot
//    is only guaranteed when producers are quiescent — finished, joined, or
//    blocked, which is exactly the state in the two read paths: the final
//    export after a run, and the deadlock watchdog's dump (every rank is
//    parked in recv by definition of the deadlock).
//  - Tracing is off by default; a disabled Span is one relaxed load.
//
// Determinism: drain() orders threads by (sort_key, label, ring age) and
// events by per-thread sequence number, so the same captured activity
// always serializes identically regardless of thread registration races.
//
// Lifetime: the recorder and the interned-name table are never destroyed
// (NameIds cached in function-local statics stay valid for the process
// life, like obs::Registry handles). Rings of exited threads are parked on
// a free list and reused by later threads — memory is bounded by the peak
// concurrent thread count, not by how many threads ever ran (the fuzz
// campaign spawns tens of thousands of short-lived rank threads).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dhpf::trace {

/// Coarse span category; exported as the Chrome trace "cat" field.
enum class Kind : std::uint8_t {
  Pass,     ///< compiler pipeline pass (cp.select, comm.generate, ...)
  Phase,    ///< sub-phase inside a pass, or an execution phase
  Send,     ///< mp runtime: message send
  Recv,     ///< mp runtime: message receive (includes the blocked wait)
  Wait,     ///< mp runtime: blocked in recv with no matching message
  Compute,  ///< mp runtime: realized modelled compute (Spin/Sleep)
  Other,
};

const char* to_string(Kind kind);

/// Index into the process-wide interned-name table. Valid forever once
/// returned by Recorder::intern().
using NameId = std::uint32_t;

/// One completed (or force-closed) span. 32 bytes; rings hold these flat.
struct Event {
  std::uint64_t start_ns = 0;  ///< steady-clock ns since the recorder epoch
  std::uint64_t end_ns = 0;    ///< >= start_ns
  std::uint32_t seq = 0;       ///< per-thread begin order (merge tiebreak)
  NameId name = 0;
  std::uint16_t depth = 0;  ///< nesting depth at begin (0 = top level)
  Kind kind = Kind::Other;
  std::uint8_t open = 0;  ///< 1 if still running when snapshotted
};

/// Snapshot of one thread's flight recorder.
struct ThreadDump {
  std::string label;        ///< "compiler", "rank3", "thread-7", ...
  int sort_key = -1;        ///< rank number for mp threads; -1 otherwise
  std::uint64_t dropped = 0;  ///< spans overwritten by ring wraparound
  std::vector<Event> events;  ///< oldest-to-newest (seq order), open last
};

/// Snapshot of every thread's recorder plus the name table to decode it.
struct TraceDump {
  std::vector<ThreadDump> threads;  ///< ordered by (sort_key, label)
  std::vector<std::string> names;   ///< NameId -> name

  [[nodiscard]] const std::string& name_of(NameId id) const { return names[id]; }
  [[nodiscard]] std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& t : threads) n += t.events.size();
    return n;
  }
};

namespace detail {
struct Ring;
struct TlsSlot;
}  // namespace detail

/// Process-wide span recorder. One instance (global()); see the module
/// comment for the concurrency contract.
class Recorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 8192;

  static Recorder& global();

  /// Master switch, checked by every Span with one relaxed load. Off by
  /// default so untraced runs pay (almost) nothing.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Intern a span name. First call per name takes a lock; cache the result
  /// (DHPF_TRACE_SPAN does this with a function-local static). Interned
  /// names survive reset() — cached ids never dangle.
  NameId intern(std::string_view name);

  /// Begin/end a span on the calling thread. end_span() without a matching
  /// begin is ignored and counted (unbalanced_ends); spans still open when
  /// the thread exits are force-closed at that instant.
  void begin_span(NameId name, Kind kind);
  void end_span();

  /// Nanoseconds since the process-wide trace epoch (the clock spans are
  /// stamped with). For record_complete timestamps taken on another thread.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Record an already-finished span [start_ns, end_ns] on the calling
  /// thread's ring at the current nesting depth. Used for intervals whose
  /// start happened on a different thread (e.g. the compile service's
  /// svc.queue_wait: enqueue is stamped by the submitter, the span is
  /// recorded by the worker at dequeue). No-op when tracing is disabled.
  void record_complete(NameId name, Kind kind, std::uint64_t start_ns,
                       std::uint64_t end_ns);

  /// Label the calling thread's ring ("rank3", "compiler", ...). sort_key
  /// orders threads in drains/exports (mp ranks pass their rank; default -1
  /// threads sort after ranks, alphabetically).
  void set_thread_label(std::string label, int sort_key = -1);

  /// Drop all recorded spans and retired rings, and set the ring capacity
  /// for subsequently (re)registered threads. Only safe when no other
  /// thread is tracing (tests; the CLI configures before compiling).
  /// Interned names are preserved.
  void reset(std::size_t ring_capacity = kDefaultRingCapacity);

  /// Snapshot every thread's ring (full fidelity when producers are
  /// quiescent; see the module comment). Does not consume the events.
  [[nodiscard]] TraceDump drain() const;

  /// Human-readable flight-recorder dump: the last `tail` spans of every
  /// thread, newest last, open spans marked. This is what the mp deadlock
  /// watchdog prints to stderr — the blocked ranks' recent history is the
  /// diagnosis.
  [[nodiscard]] std::string flight_dump_text(std::size_t tail = 16) const;

  struct Totals {
    std::uint64_t recorded = 0;    ///< spans pushed (completed or forced)
    std::uint64_t dropped = 0;     ///< spans lost to ring wraparound
    std::uint64_t unbalanced = 0;  ///< end_span() with no open span
  };
  [[nodiscard]] Totals totals() const;

 private:
  Recorder() = default;
  detail::Ring& my_ring();

  std::atomic<bool> enabled_{false};
  std::size_t ring_capacity_ = kDefaultRingCapacity;

  friend struct detail::TlsSlot;
};

/// RAII span. Construction with the cached-NameId overload is the hot path
/// (one relaxed load when tracing is off). The string overload interns on
/// every call — fine for pass-granularity sites with dynamic names.
class Span {
 public:
  Span(NameId name, Kind kind = Kind::Other) {
    Recorder& r = Recorder::global();
    armed_ = r.enabled();
    if (armed_) r.begin_span(name, kind);
  }
  Span(std::string_view name, Kind kind = Kind::Other) {
    Recorder& r = Recorder::global();
    armed_ = r.enabled();
    if (armed_) r.begin_span(r.intern(name), kind);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (armed_) Recorder::global().end_span();
  }

 private:
  bool armed_;
};

}  // namespace dhpf::trace

#define DHPF_TRACE_CONCAT_(a, b) a##b
#define DHPF_TRACE_CONCAT(a, b) DHPF_TRACE_CONCAT_(a, b)

/// Open a scoped span. The name is interned once per call site
/// (function-local static), so this is safe in hot loops; a disabled
/// recorder costs one relaxed atomic load.
#define DHPF_TRACE_SPAN(name, kind)                                             \
  static const ::dhpf::trace::NameId DHPF_TRACE_CONCAT(dhpf_trace_name_,        \
                                                       __LINE__) =              \
      ::dhpf::trace::Recorder::global().intern(name);                           \
  ::dhpf::trace::Span DHPF_TRACE_CONCAT(dhpf_trace_span_, __LINE__)(            \
      DHPF_TRACE_CONCAT(dhpf_trace_name_, __LINE__), kind)
