#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace dhpf::trace {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Nanoseconds since the process-wide trace epoch (first use). All threads
/// share the epoch, so compile-time and runtime spans merge consistently.
std::uint64_t now_ns() {
  static const SteadyClock::time_point epoch = SteadyClock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() - epoch)
          .count());
}

}  // namespace

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::Pass: return "pass";
    case Kind::Phase: return "phase";
    case Kind::Send: return "send";
    case Kind::Recv: return "recv";
    case Kind::Wait: return "wait";
    case Kind::Compute: return "compute";
    case Kind::Other: return "other";
  }
  return "?";
}

namespace detail {

struct OpenSpan {
  std::uint64_t start_ns = 0;
  std::uint32_t seq = 0;
  NameId name = 0;
  Kind kind = Kind::Other;
};

/// One thread's flight recorder. The owning thread writes slots and stack
/// without locks; `head` is the release-published event count. Everything
/// else (label, reuse, retirement) goes through the recorder mutex.
struct Ring {
  explicit Ring(std::size_t cap) : slots(cap) {}

  void push(const Event& e) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    slots[h % slots.size()] = e;
    head.store(h + 1, std::memory_order_release);
  }

  std::vector<Event> slots;
  std::atomic<std::uint64_t> head{0};

  // Owner-thread state (read by drain only when the owner is quiescent).
  std::vector<OpenSpan> stack;
  std::uint32_t next_seq = 0;

  std::atomic<std::uint64_t> unbalanced{0};

  // Guarded by the recorder mutex.
  std::string label;
  int sort_key = -1;
  std::uint64_t reg_index = 0;  ///< registration order (drain tiebreak)
  bool retired = false;         ///< owner exited; on the free list
};

struct RecorderState {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;  // all rings ever, stable addresses
  std::vector<Ring*> free_rings;             // retired, awaiting reuse
  std::vector<std::string> names;
  std::unordered_map<std::string, NameId> name_ids;
  std::uint64_t registrations = 0;
};

RecorderState& state() {
  // Leaked singleton: outlives every thread's TLS destructor.
  static RecorderState* s = new RecorderState();
  return *s;
}

/// Thread-local handle; the destructor force-closes open spans and parks
/// the ring on the free list for the next thread.
struct TlsSlot {
  Ring* ring = nullptr;

  ~TlsSlot() {
    if (ring == nullptr) return;
    const std::uint64_t t = now_ns();
    while (!ring->stack.empty()) {
      const OpenSpan o = ring->stack.back();
      ring->stack.pop_back();
      Event e;
      e.start_ns = o.start_ns;
      e.end_ns = t;
      e.seq = o.seq;
      e.name = o.name;
      e.depth = static_cast<std::uint16_t>(ring->stack.size());
      e.kind = o.kind;
      e.open = 1;  // flagged: the thread exited with this span running
      ring->push(e);
    }
    RecorderState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    ring->retired = true;
    s.free_rings.push_back(ring);
  }
};

thread_local TlsSlot g_tls;

}  // namespace detail

Recorder& Recorder::global() {
  static Recorder* instance = new Recorder();
  return *instance;
}

NameId Recorder::intern(std::string_view name) {
  detail::RecorderState& s = detail::state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.name_ids.find(std::string(name));
  if (it != s.name_ids.end()) return it->second;
  const NameId id = static_cast<NameId>(s.names.size());
  s.names.emplace_back(name);
  s.name_ids.emplace(s.names.back(), id);
  return id;
}

detail::Ring& Recorder::my_ring() {
  detail::TlsSlot& tls = detail::g_tls;
  if (tls.ring == nullptr) {
    detail::RecorderState& s = detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    detail::Ring* r;
    if (!s.free_rings.empty()) {
      r = s.free_rings.back();
      s.free_rings.pop_back();
      // A reused ring starts clean: the dead owner's history is discarded
      // (keeping it would interleave two threads' spans on one track).
      r->head.store(0, std::memory_order_relaxed);
      r->stack.clear();
      r->next_seq = 0;
      r->retired = false;
      if (r->slots.size() != ring_capacity_) {
        r->slots.assign(ring_capacity_, Event{});
        r->slots.resize(ring_capacity_);
      }
    } else {
      s.rings.push_back(std::make_unique<detail::Ring>(ring_capacity_));
      r = s.rings.back().get();
    }
    r->label = "thread-" + std::to_string(s.registrations);
    r->sort_key = -1;
    r->reg_index = s.registrations++;
    tls.ring = r;
  }
  return *tls.ring;
}

void Recorder::begin_span(NameId name, Kind kind) {
  detail::Ring& r = my_ring();
  detail::OpenSpan o;
  o.start_ns = now_ns();
  o.seq = r.next_seq++;
  o.name = name;
  o.kind = kind;
  r.stack.push_back(o);
}

void Recorder::end_span() {
  detail::Ring& r = my_ring();
  if (r.stack.empty()) {
    r.unbalanced.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const detail::OpenSpan o = r.stack.back();
  r.stack.pop_back();
  Event e;
  e.start_ns = o.start_ns;
  e.end_ns = now_ns();
  e.seq = o.seq;
  e.name = o.name;
  e.depth = static_cast<std::uint16_t>(r.stack.size());
  e.kind = o.kind;
  r.push(e);
}

std::uint64_t Recorder::now_ns() const { return trace::now_ns(); }

void Recorder::record_complete(NameId name, Kind kind, std::uint64_t start_ns,
                               std::uint64_t end_ns) {
  if (!enabled()) return;
  detail::Ring& r = my_ring();
  Event e;
  e.start_ns = start_ns;
  e.end_ns = std::max(end_ns, start_ns);
  e.seq = r.next_seq++;
  e.name = name;
  e.depth = static_cast<std::uint16_t>(r.stack.size());
  e.kind = kind;
  r.push(e);
}

void Recorder::set_thread_label(std::string label, int sort_key) {
  detail::Ring& r = my_ring();
  detail::RecorderState& s = detail::state();
  std::lock_guard<std::mutex> lock(s.mu);
  r.label = std::move(label);
  r.sort_key = sort_key;
}

void Recorder::reset(std::size_t ring_capacity) {
  detail::RecorderState& s = detail::state();
  std::lock_guard<std::mutex> lock(s.mu);
  ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  for (auto& rp : s.rings) {
    detail::Ring& r = *rp;
    r.slots.assign(ring_capacity_, Event{});
    r.head.store(0, std::memory_order_relaxed);
    r.stack.clear();
    r.next_seq = 0;
    r.unbalanced.store(0, std::memory_order_relaxed);
  }
}

TraceDump Recorder::drain() const {
  detail::RecorderState& s = detail::state();
  std::lock_guard<std::mutex> lock(s.mu);
  TraceDump dump;
  dump.names = s.names;
  struct Keyed {
    ThreadDump td;
    std::uint64_t reg_index;
  };
  std::vector<Keyed> keyed;
  const std::uint64_t t = now_ns();
  for (const auto& rp : s.rings) {
    const detail::Ring& r = *rp;
    const std::uint64_t h = r.head.load(std::memory_order_acquire);
    const std::size_t cap = r.slots.size();
    const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(h, cap));
    if (n == 0 && r.stack.empty()) continue;  // never recorded anything
    ThreadDump td;
    td.label = r.label;
    td.sort_key = r.sort_key;
    td.dropped = h > cap ? h - cap : 0;
    td.events.reserve(n + r.stack.size());
    for (std::uint64_t i = h - n; i < h; ++i)
      td.events.push_back(r.slots[static_cast<std::size_t>(i % cap)]);
    // Spans still running (e.g. a rank blocked in recv) appear with
    // end = "now" and the open flag set.
    for (std::size_t d = 0; d < r.stack.size(); ++d) {
      const detail::OpenSpan& o = r.stack[d];
      Event e;
      e.start_ns = o.start_ns;
      e.end_ns = std::max(t, o.start_ns);
      e.seq = o.seq;
      e.name = o.name;
      e.depth = static_cast<std::uint16_t>(d);
      e.kind = o.kind;
      e.open = 1;
      td.events.push_back(e);
    }
    std::sort(td.events.begin(), td.events.end(),
              [](const Event& a, const Event& b) { return a.seq < b.seq; });
    keyed.push_back(Keyed{std::move(td), r.reg_index});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    const int ka = a.td.sort_key < 0 ? std::numeric_limits<int>::max() : a.td.sort_key;
    const int kb = b.td.sort_key < 0 ? std::numeric_limits<int>::max() : b.td.sort_key;
    if (ka != kb) return ka < kb;
    if (a.td.label != b.td.label) return a.td.label < b.td.label;
    return a.reg_index < b.reg_index;
  });
  dump.threads.reserve(keyed.size());
  for (auto& k : keyed) dump.threads.push_back(std::move(k.td));
  return dump;
}

std::string Recorder::flight_dump_text(std::size_t tail) const {
  const TraceDump dump = drain();
  std::ostringstream out;
  std::uint64_t dropped = 0;
  for (const auto& td : dump.threads) dropped += td.dropped;
  out << "== trace flight recorder: " << dump.threads.size() << " thread(s), "
      << dump.total_events() << " span(s), " << dropped << " overwritten ==\n";
  char buf[160];
  for (const auto& td : dump.threads) {
    out << "-- " << td.label;
    if (td.dropped > 0) out << " (" << td.dropped << " oldest overwritten)";
    out << " --\n";
    const std::size_t n = td.events.size();
    for (std::size_t i = n > tail ? n - tail : 0; i < n; ++i) {
      const Event& e = td.events[i];
      const double start_us = static_cast<double>(e.start_ns) / 1e3;
      const double dur_us = static_cast<double>(e.end_ns - e.start_ns) / 1e3;
      std::snprintf(buf, sizeof buf, "  %12.1f us %10.1f us  %*s%s (%s)%s\n", start_us,
                    dur_us, static_cast<int>(e.depth * 2), "",
                    dump.name_of(e.name).c_str(), to_string(e.kind),
                    e.open ? "  [open]" : "");
      out << buf;
    }
  }
  return out.str();
}

Recorder::Totals Recorder::totals() const {
  detail::RecorderState& s = detail::state();
  std::lock_guard<std::mutex> lock(s.mu);
  Totals t;
  for (const auto& rp : s.rings) {
    const std::uint64_t h = rp->head.load(std::memory_order_acquire);
    const std::size_t cap = rp->slots.size();
    t.recorded += h;
    t.dropped += h > cap ? h - cap : 0;
    t.unbalanced += rp->unbalanced.load(std::memory_order_relaxed);
  }
  return t;
}

}  // namespace dhpf::trace
