#include "trace/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "support/json.hpp"

namespace dhpf::trace {

std::string chrome_trace_json(const TraceDump& dump) {
  json::Writer w(/*pretty=*/false);
  w.begin_object();
  w.member("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (std::size_t tid = 0; tid < dump.threads.size(); ++tid) {
    const ThreadDump& td = dump.threads[tid];
    w.begin_object();
    w.member("name", "thread_name");
    w.member("ph", "M");
    w.member("pid", 0);
    w.member("tid", static_cast<std::uint64_t>(tid));
    w.key("args");
    w.begin_object();
    w.member("name", td.label);
    w.end_object();
    w.end_object();
    for (const Event& e : td.events) {
      w.begin_object();
      w.member("name", dump.name_of(e.name));
      w.member("cat", to_string(e.kind));
      w.member("ph", "X");
      w.member("pid", 0);
      w.member("tid", static_cast<std::uint64_t>(tid));
      w.member("ts", static_cast<double>(e.start_ns) / 1e3);
      w.member("dur", static_cast<double>(e.end_ns - e.start_ns) / 1e3);
      if (e.open != 0) {
        w.key("args");
        w.begin_object();
        w.member("open", true);
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::vector<ProfileRow> profile(const TraceDump& dump) {
  struct Agg {
    Kind kind = Kind::Other;
    std::uint64_t calls = 0;
    double total = 0.0;
    double self = 0.0;
  };
  std::map<std::string, Agg> by_name;  // map: deterministic tie order below

  for (const ThreadDump& td : dump.threads) {
    // Sort by (start asc, end desc): a parent precedes its children even
    // when begin timestamps tie at ns resolution.
    std::vector<const Event*> evs;
    evs.reserve(td.events.size());
    for (const Event& e : td.events) evs.push_back(&e);
    std::sort(evs.begin(), evs.end(), [](const Event* a, const Event* b) {
      if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
      if (a->end_ns != b->end_ns) return a->end_ns > b->end_ns;
      return a->depth < b->depth;
    });
    // One sweep with an enclosing-span stack: each span's duration is
    // charged to its direct parent's child time.
    std::vector<double> child_s(evs.size(), 0.0);
    std::vector<std::size_t> stk;
    for (std::size_t i = 0; i < evs.size(); ++i) {
      while (!stk.empty() && evs[stk.back()]->end_ns <= evs[i]->start_ns) stk.pop_back();
      const double dur_s = static_cast<double>(evs[i]->end_ns - evs[i]->start_ns) / 1e9;
      if (!stk.empty()) child_s[stk.back()] += dur_s;
      stk.push_back(i);
    }
    for (std::size_t i = 0; i < evs.size(); ++i) {
      const double dur_s = static_cast<double>(evs[i]->end_ns - evs[i]->start_ns) / 1e9;
      Agg& a = by_name[dump.name_of(evs[i]->name)];
      a.kind = evs[i]->kind;
      a.calls += 1;
      a.total += dur_s;
      a.self += std::max(0.0, dur_s - child_s[i]);
    }
  }

  std::vector<ProfileRow> rows;
  rows.reserve(by_name.size());
  for (const auto& [name, a] : by_name)
    rows.push_back(ProfileRow{name, a.kind, a.calls, a.total, a.self});
  std::sort(rows.begin(), rows.end(), [](const ProfileRow& a, const ProfileRow& b) {
    if (a.self_seconds != b.self_seconds) return a.self_seconds > b.self_seconds;
    return a.name < b.name;
  });
  return rows;
}

std::string profile_text(const std::vector<ProfileRow>& rows) {
  std::size_t name_w = 4;
  for (const ProfileRow& r : rows) name_w = std::max(name_w, r.name.size());
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-*s %12s %12s %8s  %s\n", static_cast<int>(name_w),
                "span", "self (s)", "total (s)", "calls", "kind");
  out += buf;
  for (const ProfileRow& r : rows) {
    std::snprintf(buf, sizeof buf, "%-*s %12.6f %12.6f %8llu  %s\n",
                  static_cast<int>(name_w), r.name.c_str(), r.self_seconds,
                  r.total_seconds, static_cast<unsigned long long>(r.calls),
                  to_string(r.kind));
    out += buf;
  }
  return out;
}

std::string profile_json(const std::vector<ProfileRow>& rows) {
  json::Writer w(/*pretty=*/false);
  w.begin_array();
  for (const ProfileRow& r : rows) {
    w.begin_object();
    w.member("name", r.name);
    w.member("kind", to_string(r.kind));
    w.member("calls", static_cast<std::uint64_t>(r.calls));
    w.member("total_seconds", r.total_seconds);
    w.member("self_seconds", r.self_seconds);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

}  // namespace dhpf::trace
