// Communication generation from computation partitionings (paper §2, §7).
//
// For every reference of every statement, the non-local data set of the
// representative processor is derived with the integer-set framework:
//
//   iters(S)      = iteration set of S restricted to myid's CP guard
//   data(r)       = image of iters(S) under r's subscript map
//   nonlocal(r)   = data(r) - owned(array)
//
// Reads with a non-empty non-local set become *fetch* events (receive the
// values from their owners); non-owner writes become *write-back* events
// (the dHPF communication model requires the owner to always hold the
// current value). Events are vectorized: they are placed at the outermost
// loop level at which the consumed values are already available (message
// coalescing merges references to the same array at the same placement).
//
// §7 data availability: a fetch whose non-local read set is a subset of the
// non-local data *produced by the same processor* in the last preceding
// write is eliminated — the values are already locally available.
#pragma once

#include <string>
#include <vector>

#include "cp/select.hpp"
#include "hpf/ir.hpp"
#include "iset/set.hpp"

namespace dhpf::comm {

enum class EventKind { Fetch, WriteBack };

struct CommEvent {
  EventKind kind = EventKind::Fetch;
  const hpf::Array* array = nullptr;
  int id = -1;               ///< plan-unique event id (assigned by generate_comm)
  int stmt_id = -1;          ///< consuming (fetch) / producing (write-back) stmt
  /// Every statement this event serves. Starts as {stmt_id}; message
  /// coalescing appends the absorbed events' consumers. The verifier keys
  /// read-coverage on this, so it survives cross-statement coalescing.
  std::vector<int> consumers;
  int placement_depth = 0;   ///< # enclosing loops the event stays inside
  /// Non-local elements, as a set over
  /// [outer loop vars (placement_depth)] + [array dims].
  iset::Set data = iset::Set(0, iset::Params{});
  bool eliminated = false;   ///< true when §7 removed this fetch
  std::string note;          ///< human-readable explanation
  /// Loop path of the consuming/producing statement (for anchoring and for
  /// cross-statement coalescing of events at the same placement point).
  std::vector<const hpf::Loop*> path;

  [[nodiscard]] std::string to_string() const;
};

struct CommOptions {
  bool coalesce = true;           ///< merge same-array fetches per statement
  bool data_availability = true;  ///< §7
};

struct CommPlan {
  std::vector<CommEvent> events;

  [[nodiscard]] std::size_t active_fetches() const;
  [[nodiscard]] std::size_t eliminated_fetches() const;
  [[nodiscard]] std::string to_string() const;
};

/// Derive the communication plan for a program under the given CPs.
CommPlan generate_comm(const hpf::Program& prog, const cp::CpResult& cps,
                       const CommOptions& opt = {});

/// Total non-local elements a given rank must receive (fetch events) /
/// send back (write-back events), by concrete instantiation — used by the
/// benches to report communication volume without executing.
struct VolumeReport {
  std::size_t fetch_elems = 0;
  std::size_t writeback_elems = 0;
  std::size_t fetch_events_nonempty = 0;
};
VolumeReport count_volume(const hpf::Program& prog, const CommPlan& plan, int rank);

}  // namespace dhpf::comm
