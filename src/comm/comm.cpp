#include "comm/comm.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "analysis/sets.hpp"
#include "exec/parallel.hpp"
#include "support/diagnostics.hpp"
#include "support/metrics.hpp"
#include "trace/trace.hpp"

namespace dhpf::comm {

using analysis::IterSpace;
using cp::CP;
using hpf::Array;
using hpf::Assign;
using hpf::Loop;
using hpf::Ref;
using iset::Params;
using iset::Set;

namespace {

std::size_t common_prefix(const std::vector<const Loop*>& a,
                          const std::vector<const Loop*>& b) {
  std::size_t d = 0;
  while (d < a.size() && d < b.size() && a[d] == b[d]) ++d;
  return d;
}

/// Relation { (outer_0..depth-1, element) : element touched through `ref`
/// on myid's iterations } minus ownership.
Set nonlocal_relation(const IterSpace& is, const Set& iters, const Ref& ref,
                      std::size_t depth, const Params& params) {
  iset::AffineMap m(is.depth(), depth + ref.subs.size(), params);
  for (std::size_t d = 0; d < depth; ++d) m.out(d) = m.expr_var(d);
  for (std::size_t d = 0; d < ref.subs.size(); ++d)
    m.out(depth + d) = analysis::subscript_expr(is, ref.subs[d], params);
  Set rel = iters.apply(m);

  // Extend the owned set with unconstrained outer dims, then subtract.
  const Set owned = analysis::owned_set(*ref.array, params);
  Set owned_ext(depth + ref.subs.size(), params);
  for (const auto& part : owned.parts()) {
    iset::BasicSet ext(depth + ref.subs.size(), params);
    for (const auto& c : part.constraints()) {
      iset::LinExpr e = iset::LinExpr::zero(depth + ref.subs.size(), params.size());
      for (std::size_t i = 0; i < ref.subs.size(); ++i) e.var[depth + i] = c.e.var[i];
      e.param = c.e.param;
      e.cst = c.e.cst;
      ext.add(iset::Constraint{std::move(e), c.is_eq});
    }
    owned_ext.add_part(std::move(ext));
  }
  return rel.subtract(owned_ext);
}

/// Non-local data over array dims only (fully vectorized) — the §7 sets.
Set nonlocal_global(const IterSpace& is, const Set& iters, const Ref& ref,
                    const Params& params) {
  return nonlocal_relation(is, iters, ref, 0, params);
}

/// All elements a reference can touch over its full iteration space,
/// regardless of processor — used to decide whether a writer is relevant to
/// a read's placement (disjoint component planes of the same array, e.g.
/// lhs(..,5) vs lhs(..,6), do not interact).
Set touched_data(const std::vector<const Loop*>& path, const Ref& ref,
                 const Params& params) {
  const IterSpace is = analysis::iteration_space(path, params);
  return Set(is.bounds).apply(analysis::subscript_map(is, ref.subs, params));
}

}  // namespace

std::string CommEvent::to_string() const {
  std::ostringstream out;
  out << (kind == EventKind::Fetch ? "fetch " : "writeback ") << array->name << " @S"
      << stmt_id << " depth=" << placement_depth;
  if (eliminated) out << " [ELIMINATED: " << note << "]";
  if (!eliminated && !note.empty()) out << " (" << note << ")";
  return out.str();
}

std::size_t CommPlan::active_fetches() const {
  std::size_t n = 0;
  for (const auto& e : events)
    if (e.kind == EventKind::Fetch && !e.eliminated) ++n;
  return n;
}

std::size_t CommPlan::eliminated_fetches() const {
  std::size_t n = 0;
  for (const auto& e : events)
    if (e.kind == EventKind::Fetch && e.eliminated) ++n;
  return n;
}

std::string CommPlan::to_string() const {
  std::ostringstream out;
  for (const auto& e : events) out << e.to_string() << "\n";
  return out.str();
}

CommPlan generate_comm(const hpf::Program& prog, const cp::CpResult& cps,
                       const CommOptions& opt) {
  obs::ScopedTimer timer("comm.generate");
  const Params params = analysis::make_params(prog);
  CommPlan plan;

  // Gather assign statements (in id order for stable output).
  std::vector<const cp::StmtCp*> assigns;
  for (const auto& [id, sc] : cps.stmts)
    if (sc.stmt->is_assign()) assigns.push_back(&sc);

  // Writers per array, for placement and for §7.
  std::map<const Array*, std::vector<const cp::StmtCp*>> writers;
  for (const auto* sc : assigns) writers[sc->stmt->assign().lhs.array].push_back(sc);

  // Sub-phase span: this section runs sequentially before the §7 and
  // coalescing phases, so an optional span (reset at the end) marks it
  // without introducing a scope around the existing loop.
  std::optional<trace::Span> phase;
  phase.emplace(std::string_view("comm.events"), trace::Kind::Phase);
  // Each assign's events depend only on that statement (plus the read-only
  // writers map), so the per-assign bodies fan out across the pass driver;
  // slots merge in statement order, keeping the plan bit-identical to the
  // serial loop.
  std::vector<std::vector<CommEvent>> event_slots(assigns.size());
  exec::parallel_for(assigns.size(), [&](std::size_t slot) {
    const cp::StmtCp* sc = assigns[slot];
    std::vector<CommEvent>& out_events = event_slots[slot];
    const Assign& a = sc->stmt->assign();
    const IterSpace is = analysis::iteration_space(sc->path, params);
    const Set iters = cp::iterations_on_home(is, sc->cp, params);

    // ---- fetches for the reads ------------------------------------------
    // Placement: outside every loop not shared with a writer of the array
    // (the values are available there), i.e. at the deepest common level
    // with any same-procedure writer.
    // Keyed by (array, placement depth): refs of one array can legitimately
    // land at different depths (a plane overlapping an in-nest writer needs
    // per-iteration placement, a read-only plane vectorizes fully), and a
    // per-array key would overwrite — i.e. silently drop — the first event
    // (found by the fuzz harness: tests/corpus/coalesce-depth-split.hpf).
    // Events flush in first-appearance (rhs) order, NOT map-key order: the
    // key holds a pointer, and pointer order is allocation order — compiling
    // the same program twice in one process would emit the same events in
    // different order (caught by the compile service's byte-equivalence
    // tests; the plan must be a pure function of source and options).
    std::map<std::pair<const Array*, int>, CommEvent> coalesced;
    std::vector<std::pair<const Array*, int>> coalesced_order;
    for (const auto& r : a.rhs) {
      if (!r.array->distributed()) continue;
      std::size_t depth = 0;
      const Set read_data = touched_data(sc->path, r, params);
      for (const auto* w : writers[r.array]) {
        // Only writers whose touched elements can overlap this read matter
        // (disjoint planes of a shared array don't interact). Self-writes
        // count too: a statement reading values its own loop produces in
        // earlier iterations needs per-iteration (pipelined) placement.
        const Set write_data =
            touched_data(w->path, w->stmt->assign().lhs, params);
        if (read_data.intersect(write_data).is_empty()) continue;
        depth = std::max(depth, common_prefix(w->path, sc->path));
        if (w == sc) depth = std::max(depth, sc->path.size());
      }
      depth = std::min(depth, sc->path.size());
      Set nl = nonlocal_relation(is, iters, r, depth, params);
      if (nl.is_empty()) continue;

      const std::pair<const Array*, int> key{r.array, static_cast<int>(depth)};
      if (opt.coalesce && coalesced.count(key)) {
        DHPF_COUNTER("comm.fetches_coalesced");
        coalesced[key].data = coalesced[key].data.unite(nl);
        coalesced[key].note += ", " + r.to_string();
        continue;
      }
      DHPF_COUNTER("comm.fetch_events");
      if (depth < sc->path.size()) DHPF_COUNTER("comm.messages_vectorized");
      CommEvent ev;
      ev.kind = EventKind::Fetch;
      ev.array = r.array;
      ev.stmt_id = a.id;
      ev.consumers = {a.id};
      ev.placement_depth = static_cast<int>(depth);
      ev.data = std::move(nl);
      ev.note = r.to_string();
      ev.path = sc->path;
      if (opt.coalesce) {
        coalesced[key] = std::move(ev);
        coalesced_order.push_back(key);
      } else {
        out_events.push_back(std::move(ev));
      }
    }
    for (const auto& key : coalesced_order)
      out_events.push_back(std::move(coalesced[key]));

    // ---- write-back for a non-owner write --------------------------------
    // Exception: when the statement's CP contains the owner-computes term
    // for its own left-hand side (the §4.2 partial-replication shape), the
    // owner executes every instance itself, so replicated boundary values
    // never need to be written back.
    bool owner_computes_included = false;
    {
      const cp::OnHomeTerm own = cp::OnHomeTerm::from_ref(a.lhs);
      for (const auto& t : sc->cp.terms)
        if (t == own) owner_computes_included = true;
    }
    if (a.lhs.array->distributed() && !owner_computes_included) {
      std::size_t depth = 0;
      const Set write_data = touched_data(sc->path, a.lhs, params);
      for (const auto* other : assigns) {
        const Assign& oa = other->stmt->assign();
        bool conflicts = false;
        for (const auto& r : oa.rhs)
          if (r.array == a.lhs.array &&
              !write_data.intersect(touched_data(other->path, r, params)).is_empty())
            conflicts = true;
        // Another statement overwriting elements this write-back carries is a
        // kill: the written-back value must arrive at the owner *before* the
        // overwrite, or a stale value clobbers the newer one. Keeping the
        // write-back inside every loop shared with the conflicting writer
        // preserves the serial store order (found by the fuzz harness:
        // tests/corpus/writeback-kill-order.hpf).
        if (other != sc && oa.lhs.array == a.lhs.array &&
            !write_data.intersect(touched_data(other->path, oa.lhs, params)).is_empty())
          conflicts = true;
        if (!conflicts) continue;
        depth = std::max(depth, common_prefix(other->path, sc->path));
        if (other == sc) depth = std::max(depth, sc->path.size());
      }
      depth = std::min(depth, sc->path.size());
      Set nlw = nonlocal_relation(is, iters, a.lhs, depth, params);
      if (!nlw.is_empty()) {
        DHPF_COUNTER("comm.writeback_events");
        CommEvent ev;
        ev.kind = EventKind::WriteBack;
        ev.array = a.lhs.array;
        ev.stmt_id = a.id;
        ev.consumers = {a.id};
        ev.placement_depth = static_cast<int>(depth);
        ev.data = std::move(nlw);
        ev.note = a.lhs.to_string();
        ev.path = sc->path;
        out_events.push_back(std::move(ev));
      }
    }
  });
  for (auto& slot : event_slots)
    for (auto& ev : slot) plan.events.push_back(std::move(ev));
  phase.reset();

  // ---- §7 data availability --------------------------------------------
  if (opt.data_availability) {
    DHPF_TRACE_SPAN("comm.availability", trace::Kind::Phase);
    for (auto& ev : plan.events) {
      if (ev.kind != EventKind::Fetch) continue;
      // Last preceding write to this array (conservatively: the writer with
      // the greatest statement id not after the consumer; else the greatest
      // overall, for reads at the top of an iterative region).
      const cp::StmtCp* last = nullptr;
      for (const auto* w : writers[ev.array]) {
        const int wid = w->stmt->assign().id;
        if (wid == ev.stmt_id) continue;
        if (!last)
          last = w;
        else {
          const int lid = last->stmt->assign().id;
          const bool w_before = wid < ev.stmt_id, l_before = lid < ev.stmt_id;
          if ((w_before && (!l_before || wid > lid)) || (!w_before && !l_before && wid > lid))
            last = w;
        }
      }
      if (!last) continue;
      const Assign& la = last->stmt->assign();
      // The wrap-around case (writer later in program order than the read)
      // only describes a steady state: it needs an enclosing loop around
      // both statements to carry the written values into the next
      // iteration. Without one the read executes before the write ever
      // does, and eliminating its fetch drops communication of the initial
      // values (found by the fuzz harness: tests/corpus/avail-no-wrap.hpf).
      if (la.id > ev.stmt_id &&
          common_prefix(last->path, cps.stmts.at(ev.stmt_id).path) == 0)
        continue;
      const IterSpace lis = analysis::iteration_space(last->path, params);
      const Set liters = cp::iterations_on_home(lis, last->cp, params);
      const Set written = nonlocal_global(lis, liters, la.lhs, params);

      // The fetch's set over array dims only.
      const auto& csc = cps.stmts.at(ev.stmt_id);
      const IterSpace cis = analysis::iteration_space(csc.path, params);
      const Set citers = cp::iterations_on_home(cis, csc.cp, params);
      Set need(ev.array->extents.size(), params);
      {
        // Project the event's relation down to array dims by recomputing at
        // depth 0 from the consumer's own refs for this array.
        for (const auto& r : csc.stmt->assign().rhs)
          if (r.array == ev.array)
            need = need.unite(nonlocal_global(cis, citers, r, params));
      }
      if (!need.is_empty() && need.subset_of(written)) {
        DHPF_COUNTER("comm.availability_eliminated");
        ev.eliminated = true;
        ev.note = "nonlocal read ⊆ nonlocal data written locally by S" +
                  std::to_string(la.id) + " (sec 7)";
      }
    }
  }
  // ---- cross-statement message coalescing --------------------------------
  // Fetches of the same array by sibling statements at the same placement
  // point become one message per peer (the paper's message coalescing; this
  // is what makes §4.2 pay off when several LOCALIZE'd arrays are computed
  // from one input array). Events merge when they share the array, the
  // placement depth, the enclosing loops up to that depth, and the subtree
  // (the loop at the placement level) they anchor to.
  if (opt.coalesce) {
    DHPF_TRACE_SPAN("comm.coalesce", trace::Kind::Phase);
    std::vector<CommEvent> merged;
    for (auto& ev : plan.events) {
      if (ev.kind != EventKind::Fetch || ev.eliminated) {
        merged.push_back(std::move(ev));
        continue;
      }
      bool absorbed = false;
      for (auto& m : merged) {
        if (m.kind != EventKind::Fetch || m.eliminated) continue;
        if (m.array != ev.array || m.placement_depth != ev.placement_depth) continue;
        const auto d = static_cast<std::size_t>(ev.placement_depth);
        if (m.path.size() <= d || ev.path.size() <= d) continue;  // anchored at a stmt
        bool same_prefix = true;
        for (std::size_t i = 0; i <= d; ++i)
          if (m.path[i] != ev.path[i]) same_prefix = false;
        if (!same_prefix) continue;
        DHPF_COUNTER("comm.fetches_coalesced");
        m.data = m.data.unite(ev.data);
        m.note += "; S" + std::to_string(ev.stmt_id) + ": " + ev.note;
        for (int c : ev.consumers)
          if (std::find(m.consumers.begin(), m.consumers.end(), c) == m.consumers.end())
            m.consumers.push_back(c);
        absorbed = true;
        break;
      }
      if (!absorbed) merged.push_back(std::move(ev));
    }
    plan.events = std::move(merged);
  }
  // Stable plan-unique event ids (the verifier's message ids refer to these).
  for (std::size_t i = 0; i < plan.events.size(); ++i)
    plan.events[i].id = static_cast<int>(i);
  return plan;
}

VolumeReport count_volume(const hpf::Program& prog, const CommPlan& plan, int rank) {
  VolumeReport rep;
  const auto vals = analysis::param_values_for_rank(prog, rank);
  for (const auto& e : plan.events) {
    if (e.eliminated) continue;
    const std::size_t n = e.data.count(vals);
    if (e.kind == EventKind::Fetch) {
      rep.fetch_elems += n;
      if (n > 0) ++rep.fetch_events_nonempty;
    } else {
      rep.writeback_elems += n;
    }
  }
  return rep;
}

}  // namespace dhpf::comm
