#include "model/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/buildinfo.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/small_matrix.hpp"

namespace dhpf::model {

double median_abs_rel_error(const std::vector<Sample>& samples, const ModelParams& p) {
  std::vector<double> errs;
  for (const auto& s : samples) {
    if (s.measured_seconds <= 0.0) continue;
    const double pred =
        p.gamma * s.compute_seconds + p.alpha * s.messages + p.beta * s.bytes;
    errs.push_back(std::fabs(pred - s.measured_seconds) / s.measured_seconds);
  }
  if (errs.empty()) return 0.0;
  std::sort(errs.begin(), errs.end());
  const std::size_t m = errs.size();
  return m % 2 == 1 ? errs[m / 2] : 0.5 * (errs[m / 2 - 1] + errs[m / 2]);
}

Calibration fit(const std::vector<Sample>& samples, const ModelParams& defaults) {
  obs::ScopedTimer timer("model.fit");
  DHPF_COUNTER("model.calibrations");
  require(!samples.empty(), "model", "calibration needs at least one sample");

  Calibration cal;
  cal.defaults = defaults;
  cal.samples = samples.size();
  cal.median_error_default = median_abs_rel_error(samples, defaults);

  // Normal equations of the weighted problem, parameters ordered
  // (gamma, alpha, beta) to match the predictor order (C, M, B).
  Mat<3> A;
  Vec<3> b{};
  const double prior[3] = {defaults.gamma, defaults.alpha, defaults.beta};
  for (const auto& s : samples) {
    if (s.measured_seconds <= 0.0) continue;
    const double w = 1.0 / (s.measured_seconds * s.measured_seconds);
    const double x[3] = {s.compute_seconds, s.messages, s.bytes};
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c)
        A(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += w * x[r] * x[c];
      b[static_cast<std::size_t>(r)] += w * x[r] * s.measured_seconds;
    }
  }

  // Scale-free ridge toward the machine defaults: each diagonal gets
  // lambda * (its own magnitude, or 1 when the predictor never appears).
  // Degenerate columns — a program with no communication has M = B = 0
  // everywhere — are thereby pinned exactly to their default value.
  constexpr double kLambda = 1.0e-6;
  for (int d = 0; d < 3; ++d) {
    const auto i = static_cast<std::size_t>(d);
    const double scale = A(i, i) > 0.0 ? A(i, i) : 1.0;
    const double ridge = std::max(kLambda * scale, A(i, i) > 0.0 ? 0.0 : 1.0);
    A(i, i) += ridge;
    b[i] += ridge * prior[d];
  }

  Vec<3> sol = b;
  cal.params = defaults;  // parameters outside the fitted three keep defaults
  if (binvrhs<3>(A, sol)) {
    cal.params.gamma = std::max(0.0, sol[0]);
    cal.params.alpha = std::max(0.0, sol[1]);
    cal.params.beta = std::max(0.0, sol[2]);
    for (double v : {cal.params.gamma, cal.params.alpha, cal.params.beta})
      if (!std::isfinite(v)) cal.params = defaults;
  } else {
    cal.params = defaults;  // singular even with ridge: keep the defaults
  }

  cal.median_error_fitted = median_abs_rel_error(samples, cal.params);
  // Never ship a calibration that is worse than not calibrating.
  if (cal.median_error_fitted > cal.median_error_default) {
    cal.params = defaults;
    cal.median_error_fitted = cal.median_error_default;
  }
  return cal;
}

namespace {

void params_json(json::Writer& w, const ModelParams& p) {
  w.begin_object();
  w.member("alpha", p.alpha);
  w.member("beta", p.beta);
  w.member("gamma", p.gamma);
  w.member("delta", p.delta);
  w.member("sigma", p.sigma);
  w.end_object();
}

}  // namespace

std::string Calibration::to_json() const {
  json::Writer w(true);
  w.begin_object();
  w.key("params");
  params_json(w, params);
  w.key("defaults");
  params_json(w, defaults);
  w.member("samples", static_cast<std::uint64_t>(samples));
  w.member("median_error_default", median_error_default);
  w.member("median_error_fitted", median_error_fitted);
  w.key("build");
  w.raw(buildinfo::to_json());
  w.end_object();
  return w.str();
}

void save(const Calibration& c, const std::string& path) {
  std::ofstream out(path);
  out << c.to_json() << "\n";
  out.flush();
  require(static_cast<bool>(out), "model", "cannot write calibration: " + path);
}

ModelParams load_params(const std::string& path) {
  std::ifstream in(path);
  require(static_cast<bool>(in), "model", "cannot read calibration: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const json::Value doc = json::parse(buf.str());
  const json::Value& p = doc.at("params");
  ModelParams mp;
  mp.alpha = p.at("alpha").number();
  mp.beta = p.at("beta").number();
  mp.gamma = p.at("gamma").number();
  // Calibrations written before the shm backend carry no delta/sigma; fall
  // back the way from_machine does (barrier priced as a message, shared
  // read as a wire byte).
  mp.delta = p.number_or("delta", mp.alpha);
  mp.sigma = p.number_or("sigma", mp.beta);
  return mp;
}

std::vector<Sample> samples_from_bench_artifact(std::string_view doc) {
  const json::Value root = json::parse(doc);
  // Artifacts from the real-thread backends (mp, shm) carry measured
  // wall-clock seconds; sim artifacts carry modelled elapsed seconds.
  const bool real_backend =
      root.find("backend") != nullptr && root.at("backend").kind == json::Value::Kind::String &&
      (root.at("backend").string() == "mp" || root.at("backend").string() == "shm");
  std::vector<Sample> samples;
  const json::Value* rows = root.find("rows");
  if (rows == nullptr || !rows->is_array()) return samples;
  for (const auto& row : rows->items) {
    if (!row.is_object()) continue;
    const double np = row.number_or("nprocs", 1.0);
    if (np <= 0.0) continue;
    for (const auto& [key, cell] : row.members) {
      if (!cell.is_object()) continue;
      const double measured =
          real_backend ? cell.number_or("wall_seconds", 0.0) : cell.number_or("elapsed", 0.0);
      if (measured <= 0.0) continue;
      Sample s;
      s.label = key + "@P" + std::to_string(static_cast<int>(np));
      // Critical-rank aggregates approximated as per-rank averages; exact
      // criticals are only known to predict(), not to the bench artifact.
      s.compute_seconds = cell.number_or("total_compute", 0.0) / np;
      s.messages = cell.number_or("messages", 0.0) / np;
      s.bytes = cell.number_or("bytes", 0.0) / np;
      s.measured_seconds = measured;
      samples.push_back(std::move(s));
    }
  }
  return samples;
}

}  // namespace dhpf::model
