#include "model/model.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "analysis/sets.hpp"
#include "exec/parallel.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "verify/plan.hpp"

namespace dhpf::model {

using iset::i64;

ModelParams ModelParams::from_machine(const exec::Machine& m) {
  ModelParams p;
  p.alpha = m.latency + m.send_overhead + m.recv_overhead;
  p.beta = m.byte_time;
  p.gamma = 1.0;
  p.delta = p.alpha;
  p.sigma = p.beta;
  return p;
}

std::string ModelParams::to_string() const {
  std::ostringstream os;
  os << "alpha=" << alpha << " s/msg, beta=" << beta << " s/byte, gamma=" << gamma
     << ", delta=" << delta << " s/barrier, sigma=" << sigma << " s/shared-byte";
  return os.str();
}

double Prediction::wall(const ModelParams& p) const {
  return p.gamma * compute_seconds_critical + comm_seconds(p);
}

double Prediction::comm_seconds(const ModelParams& p) const {
  return p.alpha * critical_messages + p.beta * critical_bytes;
}

double Prediction::wall_shm(const ModelParams& p) const {
  return p.gamma * compute_seconds_critical + sync_seconds(p);
}

double Prediction::sync_seconds(const ModelParams& p) const {
  return p.delta * static_cast<double>(barrier_episodes) + p.sigma * critical_shared_bytes;
}

namespace {

/// Assignment instances of one callee invocation, by statically unrolling
/// loop extents. Callee loop bounds are affine in callee-local loop
/// variables; a bound that cannot be evaluated (it depends on an actual
/// argument) contributes extent 1 and flags the prediction as approximate.
std::size_t callee_instances(const std::vector<hpf::StmtPtr>& body,
                             std::map<std::string, long>& env, bool* approx) {
  std::size_t n = 0;
  for (const auto& sp : body) {
    if (sp->is_assign()) {
      ++n;
    } else if (sp->is_loop()) {
      const hpf::Loop& l = sp->loop();
      std::size_t extent = 1;
      try {
        const long lo = l.lo.eval(env), hi = l.hi.eval(env);
        extent = hi < lo ? 0 : static_cast<std::size_t>(hi - lo + 1);
      } catch (const std::exception&) {
        *approx = true;
      }
      env[l.var] = 0;  // nested bounds may reference it; value is irrelevant
      n += extent * callee_instances(l.body, env, approx);
      env.erase(l.var);
    } else {
      ++n;  // nested call: counted as one instance (leaf procedures only)
    }
  }
  return n;
}

/// Ids of the statements belonging to a procedure body (pre-order).
void collect_ids(const std::vector<hpf::StmtPtr>& body, std::vector<int>& out) {
  hpf::walk(body, [&](const hpf::Stmt& s, const std::vector<const hpf::Loop*>&) {
    if (s.is_assign()) out.push_back(s.assign().id);
    if (s.is_call()) out.push_back(s.call().id);
  });
}

}  // namespace

Prediction predict(const hpf::Program& prog, const cp::CpResult& cps,
                   const comm::CommPlan& plan, const exec::Machine& machine,
                   double flops_per_instance) {
  obs::ScopedTimer timer("model.predict");
  DHPF_COUNTER("model.predictions");

  Prediction pred;
  pred.flops_per_instance = flops_per_instance;
  pred.flop_time = machine.flop_time;
  const int n = prog.grids().empty() ? 1 : prog.grids().front()->nprocs();
  pred.nprocs = n;

  const iset::Params params = analysis::make_params(prog);
  std::vector<std::vector<i64>> vals;
  for (int q = 0; q < n; ++q)
    vals.push_back(prog.grids().empty() ? std::vector<i64>{}
                                        : analysis::param_values_for_rank(prog, q));

  // ---- compute: exact per-rank instance counts -------------------------
  //
  // Statements of the main procedure are counted directly: the number of
  // iteration points rank q executes is the cardinality of
  // iterations_on_home(space, CP) at q's block-bound parameter values.
  // Callee statements execute unguarded under the call statement's CP
  // (codegen::exec_callee_body), so calls are counted as on-home call
  // instances times the callee's per-invocation instance count, and callee
  // statement ids are skipped in the direct pass.
  const hpf::Procedure* main_proc =
      prog.procedures().empty() ? nullptr : prog.procedures().front().get();
  std::vector<int> main_ids;
  if (main_proc != nullptr) collect_ids(main_proc->body, main_ids);

  std::vector<double> compute_secs(static_cast<std::size_t>(n), 0.0);
  bool approx = false;
  std::vector<std::pair<int, const cp::StmtCp*>> counted;
  for (int id : main_ids) {
    const auto it = cps.stmts.find(id);
    if (it != cps.stmts.end()) counted.emplace_back(id, &it->second);
  }

  // Each statement's cost is independent of the others, so the set algebra
  // (iteration_space + iterations_on_home + per-rank cardinalities) fans out
  // across the pass pool; per-slot results merge in statement order below.
  struct StmtSlot {
    StmtCost sco;
    std::vector<double> secs;
    bool approx = false;
  };
  std::vector<StmtSlot> stmt_slots(counted.size());
  exec::parallel_for(counted.size(), [&](std::size_t slot) {
    const cp::StmtCp& sc = *counted[slot].second;
    StmtSlot& out = stmt_slots[slot];
    out.secs.assign(static_cast<std::size_t>(n), 0.0);

    const analysis::IterSpace space = analysis::iteration_space(sc.path, params);
    const iset::Set on_home = cp::iterations_on_home(space, sc.cp, params);

    double per_invocation = 1.0;
    if (sc.stmt != nullptr && sc.stmt->is_call()) {
      const auto* callee = prog.find_procedure(sc.stmt->call().callee);
      if (callee != nullptr) {
        std::map<std::string, long> env;
        per_invocation = static_cast<double>(callee_instances(callee->body, env, &out.approx));
      }
    }

    out.sco.stmt_id = counted[slot].first;
    out.sco.cp = sc.cp.to_string();
    for (int q = 0; q < n; ++q) {
      const std::size_t inst = static_cast<std::size_t>(
          static_cast<double>(on_home.cardinality(vals[static_cast<std::size_t>(q)])) *
          per_invocation);
      out.sco.total_instances += inst;
      out.sco.critical_instances = std::max(out.sco.critical_instances, inst);
      out.secs[static_cast<std::size_t>(q)] +=
          static_cast<double>(inst) * flops_per_instance * machine.flop_time;
    }
  });
  for (StmtSlot& out : stmt_slots) {
    approx = approx || out.approx;
    for (int q = 0; q < n; ++q)
      compute_secs[static_cast<std::size_t>(q)] += out.secs[static_cast<std::size_t>(q)];
    pred.total_instances += out.sco.total_instances;
    pred.stmts.push_back(std::move(out.sco));
  }
  if (approx)
    pred.note = "callee loop bounds depend on call arguments; extents taken as 1";
  pred.compute_seconds_critical =
      compute_secs.empty() ? 0.0 : *std::max_element(compute_secs.begin(), compute_secs.end());
  for (double c : compute_secs) pred.compute_seconds_total += c;

  // ---- communication: per-event, per-prefix, per-rank message loads ----
  //
  // Grouping mirrors codegen::build_event_cache: within one event and one
  // outer-iteration prefix, rank q exchanges one message per peer it needs
  // elements from (fetch: owner -> q; write-back: q -> owner). The critical
  // rank of a prefix is the one with the largest alpha/beta-weighted
  // participation (sends + receives), weighted with the *default* machine
  // constants so the aggregate is a fixed number during calibration.
  const ModelParams defaults = ModelParams::from_machine(machine);
  std::vector<const comm::CommEvent*> live;
  for (const auto& ev_ref : plan.events)
    if (!ev_ref.eliminated) live.push_back(&ev_ref);

  // Event enumeration dominates model time; each event's loads are private,
  // so the per-event sweep fans out and the slots merge in event order.
  struct EventSlot {
    EventCost ec;
    std::size_t barrier_episodes = 0;
    double critical_shared_bytes = 0.0;
    double critical_messages = 0.0;
    double critical_bytes = 0.0;
  };
  std::vector<EventSlot> event_slots(live.size());
  exec::parallel_for(live.size(), [&](std::size_t slot) {
    const auto& ev = *live[slot];
    EventSlot& out = event_slots[slot];
    const auto depth = static_cast<std::size_t>(ev.placement_depth);

    struct RankLoad {
      std::size_t msgs = 0;
      std::size_t bytes = 0;
      /// Bytes this rank *pulls* as direct shared reads on shm: the
      /// enumerating rank for a fetch, the owning peer for a write-back.
      std::size_t shm_bytes = 0;
    };
    // prefix -> per-rank participation (sender and receiver both loaded).
    std::map<std::vector<i64>, std::vector<RankLoad>> loads;

    EventCost& ec = out.ec;
    ec.event_id = ev.id;
    ec.array = ev.array->name;
    ec.fetch = ev.kind == comm::EventKind::Fetch;

    for (int q = 0; q < n; ++q) {
      // peer element counts for rank q, keyed by (prefix, peer)
      std::map<std::pair<std::vector<i64>, int>, std::size_t> groups;
      ev.data.enumerate(vals[static_cast<std::size_t>(q)], [&](const std::vector<i64>& pt) {
        std::vector<i64> prefix(pt.begin(), pt.begin() + static_cast<std::ptrdiff_t>(depth));
        const std::vector<i64> elem(pt.begin() + static_cast<std::ptrdiff_t>(depth), pt.end());
        const int owner = verify::owner_rank(prog, *ev.array, elem);
        if (owner == q) return;  // already local (block-edge clamping)
        ++groups[{std::move(prefix), owner}];
      });
      for (const auto& [key, elems] : groups) {
        const auto& [prefix, peer] = key;
        const std::size_t nbytes = elems * sizeof(double);
        ec.messages += 1;
        ec.bytes += nbytes;
        auto& per_rank = loads[prefix];
        if (per_rank.empty()) per_rank.resize(static_cast<std::size_t>(n));
        per_rank[static_cast<std::size_t>(q)].msgs += 1;
        per_rank[static_cast<std::size_t>(q)].bytes += nbytes;
        per_rank[static_cast<std::size_t>(peer)].msgs += 1;
        per_rank[static_cast<std::size_t>(peer)].bytes += nbytes;
        per_rank[static_cast<std::size_t>(ec.fetch ? q : peer)].shm_bytes += nbytes;
      }
    }

    ec.prefixes = loads.size();
    for (const auto& [prefix, per_rank] : loads) {
      double best = -1.0;
      const RankLoad* crit = nullptr;
      std::size_t max_shm = 0;
      for (const auto& rl : per_rank) {
        const double cost = defaults.alpha * static_cast<double>(rl.msgs) +
                            defaults.beta * static_cast<double>(rl.bytes);
        if (cost > best) {
          best = cost;
          crit = &rl;
        }
        max_shm = std::max(max_shm, rl.shm_bytes);
      }
      if (crit != nullptr) {
        ec.critical_messages += static_cast<double>(crit->msgs);
        ec.critical_bytes += static_cast<double>(crit->bytes);
      }
      // On shm this prefix costs one barrier pair (codegen skips both
      // barriers when no rank has traffic, which is exactly "no prefix
      // entry here"), and the critical rank is the largest puller.
      out.barrier_episodes += 2;
      out.critical_shared_bytes += static_cast<double>(max_shm);
    }
    out.critical_messages = ec.critical_messages;
    out.critical_bytes = ec.critical_bytes;
    DHPF_COUNTER("model.event_costs");
  });
  for (EventSlot& out : event_slots) {
    pred.barrier_episodes += out.barrier_episodes;
    pred.critical_shared_bytes += out.critical_shared_bytes;
    pred.messages += out.ec.messages;
    pred.bytes += out.ec.bytes;
    pred.critical_messages += out.critical_messages;
    pred.critical_bytes += out.critical_bytes;
    pred.events.push_back(std::move(out.ec));
  }

  DHPF_COUNTER_ADD("model.instances_counted", pred.total_instances);
  return pred;
}

std::string Prediction::to_string(const ModelParams& p) const {
  std::ostringstream os;
  os << "performance model (" << nprocs << " rank" << (nprocs == 1 ? "" : "s")
     << ", " << p.to_string() << ")\n";
  os << "  compute: " << total_instances << " instances total, critical rank "
     << compute_seconds_critical << " s (sum " << compute_seconds_total << " s)\n";
  os << "  comm:    " << messages << " messages, " << bytes
     << " bytes total; critical path " << critical_messages << " msgs, "
     << critical_bytes << " bytes\n";
  os << "  predicted wall " << wall(p) << " s  (compute "
     << p.gamma * compute_seconds_critical << " s + comm " << comm_seconds(p)
     << " s)\n";
  os << "  shm:     " << barrier_episodes << " barrier episodes, critical shared bytes "
     << critical_shared_bytes << "; predicted wall " << wall_shm(p) << " s  (compute "
     << p.gamma * compute_seconds_critical << " s + sync " << sync_seconds(p) << " s)\n";
  for (const auto& s : stmts)
    os << "    S" << s.stmt_id << ": " << s.total_instances << " instances (max/rank "
       << s.critical_instances << ")  " << s.cp << "\n";
  for (const auto& e : events)
    os << "    event " << e.event_id << " " << (e.fetch ? "fetch" : "write-back") << " "
       << e.array << ": " << e.messages << " msgs / " << e.bytes << " bytes over "
       << e.prefixes << " prefix(es)\n";
  if (!note.empty()) os << "  note: " << note << "\n";
  return os.str();
}

std::string Prediction::to_json(const ModelParams& p) const {
  json::Writer w(false);
  w.begin_object();
  w.member("nprocs", nprocs);
  w.key("params");
  w.begin_object();
  w.member("alpha", p.alpha);
  w.member("beta", p.beta);
  w.member("gamma", p.gamma);
  w.member("delta", p.delta);
  w.member("sigma", p.sigma);
  w.end_object();
  w.member("predicted_wall_seconds", wall(p));
  w.member("predicted_comm_seconds", comm_seconds(p));
  w.member("predicted_wall_shm_seconds", wall_shm(p));
  w.member("predicted_sync_seconds", sync_seconds(p));
  w.member("compute_seconds_critical", compute_seconds_critical);
  w.member("compute_seconds_total", compute_seconds_total);
  w.member("critical_messages", critical_messages);
  w.member("critical_bytes", critical_bytes);
  w.member("barrier_episodes", static_cast<std::uint64_t>(barrier_episodes));
  w.member("critical_shared_bytes", critical_shared_bytes);
  w.member("total_instances", static_cast<std::uint64_t>(total_instances));
  w.member("messages", static_cast<std::uint64_t>(messages));
  w.member("bytes", static_cast<std::uint64_t>(bytes));
  if (!note.empty()) w.member("note", note);
  w.key("stmts");
  w.begin_array();
  for (const auto& s : stmts) {
    w.begin_object();
    w.member("id", s.stmt_id);
    w.member("cp", s.cp);
    w.member("instances", static_cast<std::uint64_t>(s.total_instances));
    w.member("critical_instances", static_cast<std::uint64_t>(s.critical_instances));
    w.end_object();
  }
  w.end_array();
  w.key("events");
  w.begin_array();
  for (const auto& e : events) {
    w.begin_object();
    w.member("id", e.event_id);
    w.member("array", e.array);
    w.member("kind", e.fetch ? "fetch" : "writeback");
    w.member("prefixes", static_cast<std::uint64_t>(e.prefixes));
    w.member("messages", static_cast<std::uint64_t>(e.messages));
    w.member("bytes", static_cast<std::uint64_t>(e.bytes));
    w.member("critical_messages", e.critical_messages);
    w.member("critical_bytes", e.critical_bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace dhpf::model
