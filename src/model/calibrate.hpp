// Calibration of the analytic cost model (model.hpp) against measured runs.
//
// Because the model is linear in (gamma, alpha, beta), fitting is weighted
// linear least squares: each sample contributes one equation
//
//   gamma * C_i + alpha * M_i + beta * B_i  =  t_i
//
// weighted by 1/t_i^2 so the fit minimizes *relative* error (a 1 ms kernel
// and a 1 s kernel pull equally). The 3x3 normal equations are solved with
// the small-matrix Gauss-Jordan kernel the BT solver already uses, with a
// light scale-free ridge toward the machine defaults so two or three
// samples (or collinear ones) still produce a sane parameter vector
// instead of wild extrapolation.
//
// Samples come from two places: dhpfc --calibrate measures option-variants
// of the input program (each variant shifts the compute/messages/bytes mix,
// giving independent equations), and samples_from_bench_artifact() re-fits
// from a previously written bench JSON artifact without re-running anything.
// Calibrations persist as JSON carrying the build provenance of the binary
// that measured them (support/buildinfo.hpp).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/model.hpp"

namespace dhpf::model {

/// One measured run reduced to the model's predictors and its target.
struct Sample {
  std::string label;
  double compute_seconds = 0.0;   ///< C: critical-rank compute seconds
  double messages = 0.0;          ///< M: critical-path message count
  double bytes = 0.0;             ///< B: critical-path payload bytes
  double measured_seconds = 0.0;  ///< t: measured wall (sim virtual / mp real)
};

/// A fitted parameter set plus its quality relative to the defaults.
struct Calibration {
  ModelParams params;            ///< fitted
  ModelParams defaults;          ///< the starting machine-derived values
  std::size_t samples = 0;
  double median_error_default = 0.0;  ///< median |rel error| before fitting
  double median_error_fitted = 0.0;   ///< median |rel error| after fitting

  /// Persistable JSON document (params + fit quality + build provenance).
  [[nodiscard]] std::string to_json() const;
};

/// Median of |predicted - measured| / measured over the samples.
double median_abs_rel_error(const std::vector<Sample>& samples, const ModelParams& p);

/// Weighted least-squares fit. Needs at least one sample; with fewer
/// samples than parameters the ridge term keeps the system well-posed and
/// the solution stays near `defaults`. Negative fitted parameters (possible
/// when predictors are nearly collinear) are clamped to zero.
Calibration fit(const std::vector<Sample>& samples, const ModelParams& defaults);

/// Write a calibration JSON to `path` (throws dhpf::Error on I/O failure).
void save(const Calibration& c, const std::string& path);

/// Load fitted parameters back from a calibration JSON file.
ModelParams load_params(const std::string& path);

/// Extract samples from a bench artifact produced by print_table
/// (bench/nas_table_common.hpp): every non-null cell becomes one sample,
/// with per-rank critical aggregates approximated as totals / nprocs.
std::vector<Sample> samples_from_bench_artifact(std::string_view doc);

}  // namespace dhpf::model
