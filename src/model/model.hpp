// dhpf::model — analytic (execution-free) performance model over the same
// lowered-plan artifacts the static verifier consumes (CP assignment +
// communication plan).
//
// The model is deliberately *linear* in its fitted parameters:
//
//   predicted wall  =  gamma * C  +  alpha * M  +  beta * B
//
// where C, M, B are plan-derived aggregates along the critical rank —
// compute seconds, message count and payload bytes — and (gamma, alpha,
// beta) are machine parameters. Linearity is what makes calibration
// (calibrate.hpp) an ordinary least-squares problem over measured runs
// instead of a nonlinear search.
//
// Aggregates are exact, not sampled:
//   * per-statement instance counts come from integer-set point counts
//     (Set::cardinality over iterations_on_home), one per rank — never by
//     walking the iteration space of the program;
//   * per-event message/byte counts come from the communication plan's data
//     sets, grouped exactly the way codegen's event execution groups them:
//     one message per (rank, outer-iteration prefix, peer).
//
// Phase composition mirrors the SPMD execution structure: compute is a
// parallel max over ranks; each communication event is a serial sum over
// its outer-iteration prefixes (pipeline serialization) of a parallel max
// over ranks within the prefix (concurrent exchange). The per-prefix
// critical rank is chosen once, with the default machine constants, so the
// composed M and B stay fixed weights and the wall prediction stays linear
// in the parameters being fitted.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "cp/select.hpp"
#include "exec/machine.hpp"
#include "hpf/ir.hpp"

namespace dhpf::model {

/// The fitted parameters of the linear cost model. alpha/beta price the
/// message-passing backends' wall formula; delta/sigma price the
/// shared-memory backend's (barriers instead of messages, direct shared
/// reads instead of payload bytes). Both formulas share gamma * C.
struct ModelParams {
  double alpha = 0.0;  ///< seconds per critical-path message
  double beta = 0.0;   ///< seconds per critical-path payload byte
  double gamma = 1.0;  ///< dimensionless scale on modelled compute seconds
  double delta = 0.0;  ///< seconds per barrier episode (shm)
  double sigma = 0.0;  ///< seconds per critical-path shared-read byte (shm)

  /// Defaults derived from a machine description: alpha folds the fixed
  /// per-message costs (latency + both software overheads), beta is the
  /// inverse bandwidth, gamma is 1 (modelled compute taken at face value).
  /// The shm defaults reuse them: a barrier episode is priced like a
  /// message's fixed cost (delta = alpha) and a shared read like a wire
  /// byte (sigma = beta) until calibration sharpens both.
  static ModelParams from_machine(const exec::Machine& m);

  [[nodiscard]] std::string to_string() const;
};

/// Per-statement compute cost: exact instance counts per rank.
struct StmtCost {
  int stmt_id = -1;
  std::string cp;                       ///< CP rendered for the report
  std::size_t total_instances = 0;      ///< sum over ranks
  std::size_t critical_instances = 0;   ///< max over ranks
};

/// Per-event communication cost.
struct EventCost {
  int event_id = -1;
  std::string array;
  bool fetch = true;            ///< false: write-back
  std::size_t prefixes = 0;     ///< outer-iteration instances of the event
  std::size_t messages = 0;     ///< total sends, all ranks and prefixes
  std::size_t bytes = 0;        ///< total payload bytes (8 per element)
  /// Sum over prefixes of the critical rank's message/byte participation
  /// (sends + receives) within the prefix.
  double critical_messages = 0.0;
  double critical_bytes = 0.0;
};

/// The full prediction for one compiled plan.
struct Prediction {
  int nprocs = 1;
  double flops_per_instance = 10.0;  ///< cost-model constant (SpmdOptions)
  double flop_time = 0.0;            ///< seconds per flop (machine)

  std::vector<StmtCost> stmts;
  std::vector<EventCost> events;

  // Totals (comparable to the executed run's Stats: messages, bytes,
  // total_compute, total instance count).
  std::size_t total_instances = 0;
  std::size_t messages = 0;
  std::size_t bytes = 0;
  double compute_seconds_total = 0.0;

  // Critical-path aggregates — the C, M, B of the wall-time formula.
  double compute_seconds_critical = 0.0;
  double critical_messages = 0.0;
  double critical_bytes = 0.0;

  // Shared-memory aggregates: on shm every event instance (outer-iteration
  // prefix with any non-local element) costs one barrier pair, and the
  // per-prefix critical rank is the one pulling the most shared bytes.
  // barrier_episodes is exact (= the shm runtime's Stats::barriers for the
  // same plan); total shared bytes equal `bytes` by construction (every
  // wire byte becomes a direct read).
  std::size_t barrier_episodes = 0;
  double critical_shared_bytes = 0.0;

  std::string note;  ///< approximations taken (e.g. opaque callee bounds)

  /// gamma*C + alpha*M + beta*B.
  [[nodiscard]] double wall(const ModelParams& p) const;
  /// The communication share of wall (alpha*M + beta*B).
  [[nodiscard]] double comm_seconds(const ModelParams& p) const;
  /// The shm wall formula: gamma*C + delta*barriers + sigma*shared bytes.
  [[nodiscard]] double wall_shm(const ModelParams& p) const;
  /// The synchronization + shared-read share of wall_shm.
  [[nodiscard]] double sync_seconds(const ModelParams& p) const;

  [[nodiscard]] std::string to_string(const ModelParams& p) const;
  [[nodiscard]] std::string to_json(const ModelParams& p) const;
};

/// Predict the cost of a compiled plan without executing it. `machine`
/// supplies flop_time and the default critical-rank tie-breaking constants;
/// `flops_per_instance` must match the SpmdOptions the plan would run with
/// for predictions to be commensurable with measurements.
Prediction predict(const hpf::Program& prog, const cp::CpResult& cps,
                   const comm::CommPlan& plan,
                   const exec::Machine& machine = exec::Machine::sp2(),
                   double flops_per_instance = 10.0);

}  // namespace dhpf::model
