// Affine dependence analysis on the HPF-lite IR, built on the integer-set
// framework: a dependence exists iff the corresponding system of iteration
// bounds + subscript-equality + ordering constraints is non-empty.
//
// Used by the communication-sensitive loop distribution algorithm (§5: the
// loop-independent edges drive CP grouping, all edges drive the SCC graph),
// the privatizable-array analysis (§4.1: use-def links), and the data
// availability analysis (§7: last preceding write).
#pragma once

#include <vector>

#include "hpf/ir.hpp"
#include "iset/set.hpp"

namespace dhpf::analysis {

enum class DepKind { Flow, Anti, Output };

const char* to_string(DepKind k);

struct DepEdge {
  const hpf::Stmt* src = nullptr;  // executes first
  const hpf::Stmt* dst = nullptr;
  const hpf::Array* array = nullptr;
  DepKind kind = DepKind::Flow;
  /// True for a same-iteration (loop-independent) dependence; then
  /// carried_level is -1. Otherwise the dependence is carried by the
  /// common loop at this depth (0 = outermost loop of the analyzed scope).
  bool loop_independent = false;
  int carried_level = -1;
};

/// All dependences among assignment statements lexically inside `scope`
/// (including statements of nested loops). `outer_path` holds the loops
/// enclosing `scope` itself; levels are numbered with `scope` at depth 0.
std::vector<DepEdge> dependences_in_loop(const hpf::Loop& scope,
                                         const std::vector<const hpf::Loop*>& outer_path);

/// A dependence at reference granularity: the conflicting reference pair
/// plus the full constrained dependence system (iteration bounds, subscript
/// equality, the carried-level / lexical-order constraints), so clients can
/// extract a concrete witness iteration pair with Set::sample — dhpf::lint
/// uses this to print "iterations (i,j)=(2,3) and (3,3) touch a(3,3)".
struct RefDep {
  const hpf::Stmt* src = nullptr;  ///< executes first
  const hpf::Stmt* dst = nullptr;
  const hpf::Ref* src_ref = nullptr;
  const hpf::Ref* dst_ref = nullptr;
  const hpf::Array* array = nullptr;
  DepKind kind = DepKind::Flow;
  bool loop_independent = false;
  int carried_level = -1;  ///< 0 = carried by `scope` (when !loop_independent)
  std::vector<std::string> src_vars;  ///< source iteration variables
  std::vector<std::string> dst_vars;  ///< destination iteration variables
  /// System over (src_vars ++ dst_vars); non-empty iff the dependence
  /// exists. Rationally approximate like all sets — sample() to confirm.
  iset::Set system = iset::Set::empty(0, {});
};

/// Reference-pair dependences of `scope`, one RefDep per (src ref, dst ref,
/// kind, level) with its witness system. Same dependence semantics as
/// dependences_in_loop (which is the deduplicated statement-level view).
std::vector<RefDep> ref_dependences_in_loop(const hpf::Loop& scope,
                                            const std::vector<const hpf::Loop*>& outer_path);

/// Loop-independent dependences only (the §5 grouping input).
std::vector<DepEdge> loop_independent_deps(const hpf::Loop& scope,
                                           const std::vector<const hpf::Loop*>& outer_path);

/// §4.1 prerequisite check for NEW variables: every element of `arr` read in
/// an iteration of `scope` is written earlier in that same iteration.
bool check_privatizable(const hpf::Loop& scope, const std::vector<const hpf::Loop*>& outer_path,
                        const hpf::Array& arr);

/// Call graph: procedures of a program in bottom-up (callee-first) order.
/// Throws on recursion.
std::vector<const hpf::Procedure*> bottom_up_procedures(const hpf::Program& prog);

}  // namespace dhpf::analysis
