// Bridge between the HPF-lite IR and the integer-set framework.
//
// Parameter convention (following the paper's §7 formulation): the analyses
// reason about a *representative processor* `myid`; for each dimension g of
// the processor grid, the symbolic parameters lb<g> and ub<g> are the
// inclusive template-index bounds of myid's BLOCK in that grid dimension
// (the paper's  Mj*Bj  and  Mj*Bj + Bj - 1, introduced as derived
// parameters so the sets stay affine).
#pragma once

#include <vector>

#include "hpf/ir.hpp"
#include "iset/set.hpp"

namespace dhpf::analysis {

/// Parameters for a program's (single) processor grid: lb0, ub0, lb1, ...
/// Programs without a grid get empty Params.
iset::Params make_params(const hpf::Program& prog);

/// Concrete lb/ub values for a given linear rank (HPF BLOCK semantics:
/// block size = ceil(extent / procs); trailing blocks may be empty).
std::vector<iset::i64> param_values_for_rank(const hpf::Program& prog, int rank);

/// The template extent along each grid dimension (derived from the
/// distributed arrays; all arrays mapped to a grid dim must agree).
std::vector<int> template_extents(const hpf::Program& prog);

/// An iteration space: the loop variables of a loop path plus their bounds.
struct IterSpace {
  std::vector<const hpf::Loop*> path;      // outermost .. innermost
  std::vector<std::string> var_names;      // loop variables, same order
  iset::BasicSet bounds;                   // over those variables

  [[nodiscard]] std::size_t depth() const { return var_names.size(); }
  /// Index of a loop variable by name; throws if absent.
  [[nodiscard]] std::size_t var_index(const std::string& name) const;
};

/// Build the iteration space of a loop path. Loop bounds may reference
/// enclosing loop variables. Variable names along a path must be distinct.
IterSpace iteration_space(const std::vector<const hpf::Loop*>& path,
                          const iset::Params& params);

/// Convert a subscript (affine in the space's loop vars) to a LinExpr over
/// the space's variables.
iset::LinExpr subscript_expr(const IterSpace& is, const hpf::Subscript& sub,
                             const iset::Params& params);

/// Affine map from the iteration space to an array's index space.
iset::AffineMap subscript_map(const IterSpace& is, const std::vector<hpf::Subscript>& subs,
                              const iset::Params& params);

/// Elements of `a` owned by the representative processor: in-bounds indices
/// whose template index (array index + alignment offset) falls in
/// [lb<g>, ub<g>] for every BLOCK dimension.
iset::Set owned_set(const hpf::Array& a, const iset::Params& params);

/// Full index set of an array (bounds only).
iset::Set index_set(const hpf::Array& a, const iset::Params& params);

}  // namespace dhpf::analysis
