#include "analysis/dependence.hpp"

#include <algorithm>
#include <map>

#include "analysis/sets.hpp"
#include "support/diagnostics.hpp"
#include "support/metrics.hpp"

namespace dhpf::analysis {

using iset::BasicSet;
using iset::Constraint;
using iset::LinExpr;
using iset::Params;
using iset::Set;

const char* to_string(DepKind k) {
  switch (k) {
    case DepKind::Flow: return "flow";
    case DepKind::Anti: return "anti";
    case DepKind::Output: return "output";
  }
  return "?";
}

namespace {

struct Access {
  const hpf::Stmt* stmt = nullptr;
  const hpf::Ref* ref = nullptr;
  bool write = false;
  std::vector<const hpf::Loop*> path;  // full: outer + scope + inner
  int order = 0;                       // lexical pre-order within the scope
};

std::vector<Access> collect_accesses(const hpf::Loop& scope,
                                     const std::vector<const hpf::Loop*>& outer_path) {
  std::vector<Access> out;
  int order = 0;
  std::vector<const hpf::Loop*> base = outer_path;
  base.push_back(&scope);
  hpf::walk(scope.body, [&](hpf::Stmt& s, const std::vector<const hpf::Loop*>& rel) {
    if (!s.is_assign()) return;
    std::vector<const hpf::Loop*> full = base;
    full.insert(full.end(), rel.begin(), rel.end());
    const auto& a = s.assign();
    const int my_order = order++;
    out.push_back(Access{&s, &a.lhs, true, full, my_order});
    for (const auto& r : a.rhs) out.push_back(Access{&s, &r, false, full, my_order});
  });
  return out;
}

/// Longest common prefix (by pointer identity) of two loop paths.
std::size_t common_depth(const std::vector<const hpf::Loop*>& a,
                         const std::vector<const hpf::Loop*>& b) {
  std::size_t d = 0;
  while (d < a.size() && d < b.size() && a[d] == b[d]) ++d;
  return d;
}

/// Build the 2-statement dependence system over (src iter vars, dst iter
/// vars) with subscript equality. Returns nullopt if ranks differ (cannot
/// conflict).
BasicSet pair_system(const Access& A, const Access& B, const Params& params) {
  DHPF_COUNTER("analysis.dep_pair_systems");
  const IterSpace ia = iteration_space(A.path, params);
  const IterSpace ib = iteration_space(B.path, params);
  const std::size_t na = ia.depth(), nb = ib.depth();
  BasicSet sys(na + nb, params);
  auto shift = [&](const LinExpr& e, std::size_t offset) {
    LinExpr r = LinExpr::zero(na + nb, params.size());
    for (std::size_t i = 0; i < e.var.size(); ++i) r.var[offset + i] = e.var[i];
    r.param = e.param;
    r.cst = e.cst;
    return r;
  };
  for (const auto& c : ia.bounds.constraints()) sys.add(Constraint{shift(c.e, 0), c.is_eq});
  for (const auto& c : ib.bounds.constraints()) sys.add(Constraint{shift(c.e, na), c.is_eq});
  for (std::size_t d = 0; d < A.ref->subs.size(); ++d) {
    const LinExpr fa = shift(subscript_expr(ia, A.ref->subs[d], params), 0);
    const LinExpr fb = shift(subscript_expr(ib, B.ref->subs[d], params), na);
    sys.add(Constraint::eq0(fa - fb));
  }
  return sys;
}

DepKind classify(bool src_write, bool dst_write) {
  if (src_write && dst_write) return DepKind::Output;
  return src_write ? DepKind::Flow : DepKind::Anti;
}

}  // namespace

std::vector<DepEdge> dependences_in_loop(const hpf::Loop& scope,
                                         const std::vector<const hpf::Loop*>& outer_path) {
  const Params params;  // dependences do not involve the distribution
  const auto accesses = collect_accesses(scope, outer_path);
  const std::size_t scope_depth = outer_path.size();  // index of `scope` in full paths

  std::vector<DepEdge> edges;
  auto emit = [&](const DepEdge& e) {
    for (const auto& x : edges)
      if (x.src == e.src && x.dst == e.dst && x.array == e.array && x.kind == e.kind &&
          x.loop_independent == e.loop_independent && x.carried_level == e.carried_level)
        return;
    switch (e.kind) {
      case DepKind::Flow: DHPF_COUNTER("analysis.deps_flow"); break;
      case DepKind::Anti: DHPF_COUNTER("analysis.deps_anti"); break;
      case DepKind::Output: DHPF_COUNTER("analysis.deps_output"); break;
    }
    edges.push_back(e);
  };

  for (const auto& A : accesses)
    for (const auto& B : accesses) {
      if (!A.write && !B.write) continue;
      if (A.ref->array != B.ref->array) continue;
      if (&A == &B) continue;
      // Consider ordered pair (A source, B destination) only once per
      // unordered pair by requiring: A.write (flow/output) or B.write (anti
      // handled when roles swap). We simply evaluate every ordered pair and
      // let the ordering constraints decide feasibility.
      const std::size_t nc = common_depth(A.path, B.path);
      const std::size_t na = A.path.size();
      BasicSet sys = pair_system(A, B, params);

      // Loop-independent: all common loop variables equal; source must be
      // lexically earlier. (Within one statement instance reads precede the
      // write; same-statement same-iteration pairs are not dependences.)
      if (A.order < B.order) {
        DHPF_COUNTER("analysis.dep_tests_loop_independent");
        BasicSet li = sys;
        for (std::size_t d = 0; d < nc; ++d)
          li.add(Constraint::eq0(li.expr_var(d) - li.expr_var(na + d)));
        if (!li.is_empty())
          emit(DepEdge{A.stmt, B.stmt, A.ref->array, classify(A.write, B.write), true, -1});
      }
      // Carried by a common loop at or below `scope`.
      for (std::size_t lvl = scope_depth; lvl < nc; ++lvl) {
        DHPF_COUNTER("analysis.dep_tests_carried");
        BasicSet cd = sys;
        for (std::size_t d = 0; d < lvl; ++d)
          cd.add(Constraint::eq0(cd.expr_var(d) - cd.expr_var(na + d)));
        cd.add(Constraint::ge0(cd.expr_var(na + lvl) - cd.expr_var(lvl) - cd.expr_const(1)));
        if (!cd.is_empty())
          emit(DepEdge{A.stmt, B.stmt, A.ref->array, classify(A.write, B.write), false,
                       static_cast<int>(lvl - scope_depth)});
      }
    }
  return edges;
}

std::vector<RefDep> ref_dependences_in_loop(const hpf::Loop& scope,
                                            const std::vector<const hpf::Loop*>& outer_path) {
  const Params params;
  const auto accesses = collect_accesses(scope, outer_path);
  const std::size_t scope_depth = outer_path.size();

  auto var_names = [](const std::vector<const hpf::Loop*>& path) {
    std::vector<std::string> names;
    names.reserve(path.size());
    for (const auto* l : path) names.push_back(l->var);
    return names;
  };

  std::vector<RefDep> deps;
  for (const auto& A : accesses)
    for (const auto& B : accesses) {
      if (!A.write && !B.write) continue;
      if (A.ref->array != B.ref->array) continue;
      if (&A == &B) continue;
      const std::size_t nc = common_depth(A.path, B.path);
      const std::size_t na = A.path.size();
      BasicSet sys = pair_system(A, B, params);

      auto make = [&](BasicSet constrained, bool li, int level) {
        if (constrained.is_empty()) return;
        RefDep d;
        d.src = A.stmt;
        d.dst = B.stmt;
        d.src_ref = A.ref;
        d.dst_ref = B.ref;
        d.array = A.ref->array;
        d.kind = classify(A.write, B.write);
        d.loop_independent = li;
        d.carried_level = level;
        d.src_vars = var_names(A.path);
        d.dst_vars = var_names(B.path);
        d.system = Set(std::move(constrained));
        deps.push_back(std::move(d));
      };

      if (A.order < B.order) {
        BasicSet li = sys;
        for (std::size_t d = 0; d < nc; ++d)
          li.add(Constraint::eq0(li.expr_var(d) - li.expr_var(na + d)));
        make(std::move(li), true, -1);
      }
      for (std::size_t lvl = scope_depth; lvl < nc; ++lvl) {
        BasicSet cd = sys;
        for (std::size_t d = 0; d < lvl; ++d)
          cd.add(Constraint::eq0(cd.expr_var(d) - cd.expr_var(na + d)));
        cd.add(Constraint::ge0(cd.expr_var(na + lvl) - cd.expr_var(lvl) - cd.expr_const(1)));
        make(std::move(cd), false, static_cast<int>(lvl - scope_depth));
      }
    }
  return deps;
}

std::vector<DepEdge> loop_independent_deps(const hpf::Loop& scope,
                                           const std::vector<const hpf::Loop*>& outer_path) {
  auto all = dependences_in_loop(scope, outer_path);
  std::vector<DepEdge> out;
  for (auto& e : all)
    if (e.loop_independent) out.push_back(e);
  return out;
}

bool check_privatizable(const hpf::Loop& scope,
                        const std::vector<const hpf::Loop*>& outer_path,
                        const hpf::Array& arr) {
  DHPF_COUNTER("analysis.privatizable_checks");
  const Params params;
  const std::size_t keep = outer_path.size() + 1;  // outer vars + scope var

  std::vector<const hpf::Loop*> base = outer_path;
  base.push_back(&scope);

  // Relation { (outer iters incl. scope, element) } for each access.
  auto relation = [&](const std::vector<const hpf::Loop*>& full,
                      const hpf::Ref& ref) -> Set {
    const IterSpace is = iteration_space(full, params);
    iset::AffineMap m(is.depth(), keep + ref.subs.size(), params);
    for (std::size_t d = 0; d < keep; ++d) m.out(d) = m.expr_var(d);
    for (std::size_t d = 0; d < ref.subs.size(); ++d)
      m.out(keep + d) = subscript_expr(is, ref.subs[d], params);
    return Set(is.bounds).apply(m);
  };

  const std::size_t out_dims = keep + arr.extents.size();
  Set defs = Set::empty(out_dims, params);
  Set uses = Set::empty(out_dims, params);
  bool def_subscripts_exact = true;

  hpf::walk(scope.body, [&](hpf::Stmt& s, const std::vector<const hpf::Loop*>& rel) {
    if (!s.is_assign()) return;
    std::vector<const hpf::Loop*> full = base;
    full.insert(full.end(), rel.begin(), rel.end());
    const auto& a = s.assign();
    if (a.lhs.array == &arr) {
      for (const auto& sub : a.lhs.subs)
        for (const auto& [_, c] : sub.coef)
          if (c != 1 && c != -1) def_subscripts_exact = false;
      defs = defs.unite(relation(full, a.lhs));
    }
    for (const auto& r : a.rhs)
      if (r.array == &arr) uses = uses.unite(relation(full, r));
  });

  // Non-unit def coefficients could make the def relation an
  // over-approximation (lattice gaps), which would be unsound here.
  if (!def_subscripts_exact) return false;
  return uses.subset_of(defs);
}

std::vector<const hpf::Procedure*> bottom_up_procedures(const hpf::Program& prog) {
  std::map<const hpf::Procedure*, std::vector<const hpf::Procedure*>> callees;
  for (const auto& p : prog.procedures()) {
    auto& list = callees[p.get()];
    hpf::walk(p->body, [&](hpf::Stmt& s, const std::vector<const hpf::Loop*>&) {
      if (!s.is_call()) return;
      const auto* callee = prog.find_procedure(s.call().callee);
      require(callee != nullptr, "analysis", "call to unknown procedure " + s.call().callee);
      list.push_back(callee);
    });
  }
  std::vector<const hpf::Procedure*> order;
  std::map<const hpf::Procedure*, int> state;  // 0 new, 1 visiting, 2 done
  std::function<void(const hpf::Procedure*)> dfs = [&](const hpf::Procedure* p) {
    require(state[p] != 1, "analysis", "recursive call graph at " + p->name);
    if (state[p] == 2) return;
    state[p] = 1;
    for (const auto* c : callees[p]) dfs(c);
    state[p] = 2;
    order.push_back(p);  // post-order: callees first
  };
  for (const auto& p : prog.procedures()) dfs(p.get());
  return order;
}

}  // namespace dhpf::analysis
