#include "analysis/sets.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace dhpf::analysis {

using iset::AffineMap;
using iset::BasicSet;
using iset::Constraint;
using iset::i64;
using iset::LinExpr;
using iset::Params;
using iset::Set;

namespace {

const hpf::ProcGrid* single_grid(const hpf::Program& prog) {
  require(prog.grids().size() <= 1, "analysis",
          "programs with multiple processor grids are not supported");
  return prog.grids().empty() ? nullptr : prog.grids().front().get();
}

}  // namespace

Params make_params(const hpf::Program& prog) {
  const hpf::ProcGrid* g = single_grid(prog);
  std::vector<std::string> names;
  if (g) {
    for (std::size_t d = 0; d < g->extents.size(); ++d) {
      names.push_back("lb" + std::to_string(d));
      names.push_back("ub" + std::to_string(d));
    }
  }
  return Params(names);
}

std::vector<int> template_extents(const hpf::Program& prog) {
  const hpf::ProcGrid* g = single_grid(prog);
  if (!g) return {};
  std::vector<int> ext(g->extents.size(), -1);
  for (const auto& a : prog.arrays()) {
    if (!a->dist.grid) continue;
    for (std::size_t d = 0; d < a->dist.dims.size(); ++d) {
      const auto& dim = a->dist.dims[d];
      if (dim.kind != hpf::DistKind::Block) continue;
      const int e = a->extents[d] + a->dist.offset(d);
      auto& slot = ext[static_cast<std::size_t>(dim.proc_dim)];
      if (slot < 0)
        slot = e;
      else
        require(slot == e, "analysis",
                "arrays distributed on the same grid dimension must have equal "
                "template extents (array " + a->name + ")");
    }
  }
  for (auto& e : ext)
    if (e < 0) e = 1;  // grid dim unused by any array
  return ext;
}

std::vector<i64> param_values_for_rank(const hpf::Program& prog, int rank) {
  const hpf::ProcGrid* g = single_grid(prog);
  if (!g) return {};
  const std::vector<int> ext = template_extents(prog);
  const std::vector<int> coords = g->coords(rank);
  std::vector<i64> vals;
  for (std::size_t d = 0; d < g->extents.size(); ++d) {
    const int p = g->extents[d];
    const int e = ext[d];
    const int b = (e + p - 1) / p;  // HPF BLOCK: ceil division
    const i64 lb = static_cast<i64>(coords[d]) * b;
    const i64 ub = std::min<i64>(e - 1, lb + b - 1);
    vals.push_back(lb);
    vals.push_back(ub);
  }
  return vals;
}

std::size_t IterSpace::var_index(const std::string& name) const {
  for (std::size_t i = 0; i < var_names.size(); ++i)
    if (var_names[i] == name) return i;
  fail("analysis", "unknown loop variable: " + name);
}

IterSpace iteration_space(const std::vector<const hpf::Loop*>& path, const Params& params) {
  IterSpace is{path, {}, BasicSet(path.size(), params)};
  for (const auto* l : path) {
    for (const auto& existing : is.var_names)
      require(existing != l->var, "analysis", "shadowed loop variable: " + l->var);
    is.var_names.push_back(l->var);
  }
  for (std::size_t d = 0; d < path.size(); ++d) {
    // Bounds may reference enclosing loop variables only.
    auto to_expr = [&](const hpf::Subscript& s) {
      LinExpr e = LinExpr::constant(path.size(), params.size(), s.cst);
      for (const auto& [name, a] : s.coef) {
        const std::size_t v = is.var_index(name);
        require(v < d, "analysis", "loop bound uses non-enclosing variable: " + name);
        e.var[v] += a;
      }
      return e;
    };
    is.bounds.add_bounds(d, to_expr(path[d]->lo), to_expr(path[d]->hi));
  }
  return is;
}

LinExpr subscript_expr(const IterSpace& is, const hpf::Subscript& sub, const Params& params) {
  LinExpr e = LinExpr::constant(is.depth(), params.size(), sub.cst);
  for (const auto& [name, a] : sub.coef) e.var[is.var_index(name)] += a;
  return e;
}

AffineMap subscript_map(const IterSpace& is, const std::vector<hpf::Subscript>& subs,
                        const Params& params) {
  AffineMap m(is.depth(), subs.size(), params);
  for (std::size_t d = 0; d < subs.size(); ++d) m.out(d) = subscript_expr(is, subs[d], params);
  return m;
}

Set index_set(const hpf::Array& a, const Params& params) {
  BasicSet bs(a.extents.size(), params);
  for (std::size_t d = 0; d < a.extents.size(); ++d)
    bs.add_bounds(d, bs.expr_const(0), bs.expr_const(a.extents[d] - 1));
  return Set(bs);
}

Set owned_set(const hpf::Array& a, const Params& params) {
  if (!a.distributed()) return index_set(a, params);  // replicated: all local
  BasicSet bs(a.extents.size(), params);
  for (std::size_t d = 0; d < a.extents.size(); ++d) {
    bs.add_bounds(d, bs.expr_const(0), bs.expr_const(a.extents[d] - 1));
    const auto& dim = a.dist.dims[d];
    if (dim.kind != hpf::DistKind::Block) continue;
    const std::string g = std::to_string(dim.proc_dim);
    const i64 off = a.dist.offset(d);
    // lb<g> <= x_d + off <= ub<g>
    bs.add(Constraint::ge0(bs.expr_var(d) + bs.expr_const(off) - bs.expr_param("lb" + g)));
    bs.add(Constraint::ge0(bs.expr_param("ub" + g) - bs.expr_var(d) - bs.expr_const(off)));
  }
  return Set(bs);
}

}  // namespace dhpf::analysis
