// Symbolic integer tuple sets (unions of parametric polyhedra) and affine
// maps — the dHPF integer-set framework (paper §2). Iteration sets, data
// sets and processor sets are all values of this type, and the compiler's
// analyses are sequences of the operations below.
//
// Projection uses Fourier-Motzkin elimination. Equality substitution is
// integer-exact; inequality pair elimination is rational (no dark shadow),
// which makes is_empty() sound in the direction the compiler relies on:
// "empty" answers are always true (so eliminating communication based on a
// subset() result is safe); "non-empty" answers may rarely be conservative
// (costing at most a redundant message). Point enumeration re-checks the
// original constraints, so it is always exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "iset/affine.hpp"

namespace dhpf::iset {

class AffineMap;
class Set;

std::shared_ptr<const Set> intern(const Set& s);

/// Conjunction of affine constraints over `nvars` tuple variables + params.
class BasicSet {
 public:
  BasicSet(std::size_t nvars, Params params)
      : nvars_(nvars), params_(std::move(params)) {}

  // The cached rep id lives in an atomic (lazily computed under concurrent
  // readers), so copies and moves are spelled out: both carry the cached id
  // along (it describes the same representation); a moved-from set loses
  // its constraints, so its id is invalidated.
  BasicSet(const BasicSet& o)
      : nvars_(o.nvars_), params_(o.params_), cs_(o.cs_),
        rep_(o.rep_.load(std::memory_order_relaxed)) {}
  BasicSet(BasicSet&& o) noexcept
      : nvars_(o.nvars_), params_(std::move(o.params_)), cs_(std::move(o.cs_)),
        rep_(o.rep_.load(std::memory_order_relaxed)) {
    o.rep_.store(0, std::memory_order_relaxed);
  }
  BasicSet& operator=(const BasicSet& o) {
    if (this != &o) {
      nvars_ = o.nvars_;
      params_ = o.params_;
      cs_ = o.cs_;
      rep_.store(o.rep_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    }
    return *this;
  }
  BasicSet& operator=(BasicSet&& o) noexcept {
    if (this != &o) {
      nvars_ = o.nvars_;
      params_ = std::move(o.params_);
      cs_ = std::move(o.cs_);
      rep_.store(o.rep_.load(std::memory_order_relaxed), std::memory_order_relaxed);
      o.rep_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }

  static BasicSet universe(std::size_t nvars, Params params) {
    return BasicSet(nvars, std::move(params));
  }

  [[nodiscard]] std::size_t nvars() const { return nvars_; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const { return cs_; }

  void add(Constraint c);

  /// Convenience constraint builders (lo <= var <= hi etc.).
  void add_bounds(std::size_t v, const LinExpr& lo, const LinExpr& hi);
  void add_eq(std::size_t v, const LinExpr& value);

  [[nodiscard]] LinExpr expr_zero() const { return LinExpr::zero(nvars_, params_.size()); }
  [[nodiscard]] LinExpr expr_var(std::size_t v, i64 coef = 1) const {
    return LinExpr::variable(nvars_, params_.size(), v, coef);
  }
  [[nodiscard]] LinExpr expr_const(i64 c) const {
    return LinExpr::constant(nvars_, params_.size(), c);
  }
  [[nodiscard]] LinExpr expr_param(const std::string& name, i64 coef = 1) const {
    return LinExpr::parameter(nvars_, params_.size(), params_.index(name), coef);
  }

  [[nodiscard]] BasicSet intersect(const BasicSet& o) const;

  /// Fourier-Motzkin: eliminate tuple variable v (arity shrinks by one).
  [[nodiscard]] BasicSet project_out(std::size_t v) const;

  /// Rationally infeasible (over vars and params jointly)? true => truly empty.
  [[nodiscard]] bool is_empty() const;

  [[nodiscard]] bool contains(const std::vector<i64>& vars,
                              const std::vector<i64>& params) const;

  /// Gcd-normalize, fold constants, drop duplicates and tautologies.
  /// Returns false if a constraint is statically unsatisfiable.
  bool simplify();

  [[nodiscard]] std::string to_string(const std::vector<std::string>& var_names = {}) const;

  /// Stable id of this exact representation (constraint order included):
  /// equal ids <=> bit-identical sets. Computed lazily, cached, invalidated
  /// on mutation. Memo keys and the property tests build on this.
  [[nodiscard]] std::uint64_t rep_id() const;

 private:
  friend class Set;
  std::size_t nvars_;
  Params params_;
  std::vector<Constraint> cs_;
  mutable std::atomic<std::uint64_t> rep_{0};  // 0 = not yet computed
};

/// Finite union of BasicSets of equal arity over shared Params.
class Set {
 public:
  Set(std::size_t nvars, Params params) : nvars_(nvars), params_(std::move(params)) {}
  /// Singleton union.
  explicit Set(BasicSet bs);

  // Same rep-id carrying rules as BasicSet (see above).
  Set(const Set& o)
      : nvars_(o.nvars_), params_(o.params_), parts_(o.parts_),
        rep_(o.rep_.load(std::memory_order_relaxed)) {}
  Set(Set&& o) noexcept
      : nvars_(o.nvars_), params_(std::move(o.params_)), parts_(std::move(o.parts_)),
        rep_(o.rep_.load(std::memory_order_relaxed)) {
    o.rep_.store(0, std::memory_order_relaxed);
  }
  Set& operator=(const Set& o) {
    if (this != &o) {
      nvars_ = o.nvars_;
      params_ = o.params_;
      parts_ = o.parts_;
      rep_.store(o.rep_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    }
    return *this;
  }
  Set& operator=(Set&& o) noexcept {
    if (this != &o) {
      nvars_ = o.nvars_;
      params_ = std::move(o.params_);
      parts_ = std::move(o.parts_);
      rep_.store(o.rep_.load(std::memory_order_relaxed), std::memory_order_relaxed);
      o.rep_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }

  static Set empty(std::size_t nvars, Params params) { return Set(nvars, std::move(params)); }
  static Set universe(std::size_t nvars, Params params) {
    return Set(BasicSet::universe(nvars, std::move(params)));
  }

  [[nodiscard]] std::size_t nvars() const { return nvars_; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const std::vector<BasicSet>& parts() const { return parts_; }

  void add_part(BasicSet bs);

  [[nodiscard]] Set unite(const Set& o) const;
  [[nodiscard]] Set intersect(const Set& o) const;
  /// A - B, via integer-exact constraint negation.
  [[nodiscard]] Set subtract(const Set& o) const;
  [[nodiscard]] Set project_out(std::size_t v) const;

  [[nodiscard]] bool is_empty() const;
  /// this ⊆ o (symbolically, over all parameter values consistent with the
  /// constraints already present). true is always sound.
  [[nodiscard]] bool subset_of(const Set& o) const { return subtract(o).is_empty(); }

  [[nodiscard]] bool contains(const std::vector<i64>& vars,
                              const std::vector<i64>& params) const;

  /// Image under an affine map (exact: introduces the input variables and
  /// projects them out; enumeration-facing users re-check membership).
  [[nodiscard]] Set apply(const AffineMap& map) const;
  /// Preimage under an affine map (exact substitution).
  [[nodiscard]] Set preimage(const AffineMap& map) const;

  /// Enumerate all integer points for concrete parameter values, in
  /// lexicographic order. Exact (candidates from rational projection are
  /// re-checked against the true constraints). Requires the set to be
  /// bounded for these parameter values.
  void enumerate(const std::vector<i64>& param_values,
                 const std::function<void(const std::vector<i64>&)>& cb) const;

  /// Number of points (enumerate-based; for tests and cost estimation).
  [[nodiscard]] std::size_t count(const std::vector<i64>& param_values) const;

  /// Exact number of integer points for concrete parameter values. Agrees
  /// with count() but never materializes the point list: union parts are
  /// made disjoint by subtraction (so overlap is not double-counted) and
  /// each disjoint polyhedron is counted by a bounded descent that re-checks
  /// the original constraints — the same exactness argument as enumerate().
  /// This is the cost model's workhorse (dhpf::model); bumps the
  /// iset.cardinalities counter.
  [[nodiscard]] std::size_t cardinality(const std::vector<i64>& param_values) const;

  /// Lexicographically least integer point for concrete parameter values, or
  /// nullopt when the set is empty there. Exact (same machinery as
  /// enumerate()); the verifier uses this to extract counterexample
  /// witnesses from non-empty difference sets.
  [[nodiscard]] std::optional<std::vector<i64>> sample(
      const std::vector<i64>& param_values) const;

  [[nodiscard]] std::string to_string(const std::vector<std::string>& var_names = {}) const;

  /// Stable id of this exact representation (part and constraint order
  /// included); see BasicSet::rep_id().
  [[nodiscard]] std::uint64_t rep_id() const;

 private:
  friend std::shared_ptr<const Set> intern(const Set& s);
  std::size_t nvars_;
  Params params_;
  std::vector<BasicSet> parts_;
  mutable std::atomic<std::uint64_t> rep_{0};  // 0 = not yet computed
};

/// Affine map Z^n_in -> Z^n_out (each output an affine expr of inputs+params).
class AffineMap {
 public:
  AffineMap(std::size_t n_in, std::size_t n_out, Params params);

  static AffineMap identity(std::size_t n, Params params);

  [[nodiscard]] std::size_t n_in() const { return n_in_; }
  [[nodiscard]] std::size_t n_out() const { return outs_.size(); }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Output expressions are over n_in tuple variables + params.
  LinExpr& out(std::size_t i) { return outs_[i]; }
  [[nodiscard]] const LinExpr& out(std::size_t i) const { return outs_[i]; }

  [[nodiscard]] LinExpr expr_zero() const { return LinExpr::zero(n_in_, params_.size()); }
  [[nodiscard]] LinExpr expr_var(std::size_t v, i64 coef = 1) const {
    return LinExpr::variable(n_in_, params_.size(), v, coef);
  }
  [[nodiscard]] LinExpr expr_const(i64 c) const {
    return LinExpr::constant(n_in_, params_.size(), c);
  }
  [[nodiscard]] LinExpr expr_param(const std::string& name, i64 coef = 1) const {
    return LinExpr::parameter(n_in_, params_.size(), params_.index(name), coef);
  }

  /// (this ∘ inner): first apply inner, then this.
  [[nodiscard]] AffineMap compose(const AffineMap& inner) const;

  [[nodiscard]] std::vector<i64> eval(const std::vector<i64>& in,
                                      const std::vector<i64>& params) const;

 private:
  std::size_t n_in_;
  Params params_;
  std::vector<LinExpr> outs_;
};

}  // namespace dhpf::iset
