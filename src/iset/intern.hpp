// Hash-consing and operation memoization for the integer-set core
// (tentpole of the iset speed work; ROADMAP "raw speed of the integer-set
// core"). Two distinct identity notions, deliberately kept separate:
//
//  * **Representation ids** (`BasicSet::rep_id()`, `Set::rep_id()`): a
//    monotonically assigned 64-bit id per *exact* representation — the
//    serialized bytes of (arity, parameter names, parts and constraints in
//    their stored order). Two values get the same id iff they are
//    bit-identical, so memoizing an operation on rep ids returns exactly
//    what recomputation would have produced — including part order and
//    constraint order, which are externally observable (to_string, the
//    verifier's fragmentation-budget decisions). The table compares full
//    keys, never just hashes, so a hash collision can not alias two sets.
//
//  * **Canonical nodes** (`intern(set)`): a shared immutable node per
//    *mathematical* representation — constraints sorted within each part,
//    parts sorted — so structurally equal sets built in different orders
//    share one node and equality is pointer comparison. Canonical nodes
//    are for cross-pass sharing and tests; they are NOT used as memo keys
//    precisely because canonicalization erases observable order.
//
// Memoization covers the hot operations: intersect, unite, subtract,
// project_out, apply, preimage (Set results), BasicSet emptiness (bool),
// cardinality and sample (per concrete parameter point). All tables are
// sharded (per-shard mutex) and safe for concurrent use by the parallel
// pass driver; per-shard entry caps bound memory, and an overflowing
// shard is cleared whole (counted in `iset.cache.evictions`) so eviction
// is deterministic in single-threaded runs. Rep ids are never reused
// after eviction, so a stale table entry is impossible by construction.
//
// The escape hatch: `ISET_NO_CACHE=1` in the environment (or
// `set_cache_enabled(false)`) disables every lookup and store, giving the
// pre-optimization reference path the property tests differential-test
// against. Obs counters: `iset.cache.hits` / `.misses` / `.evictions`,
// `iset.intern.nodes` / `.reuses`. Process-wide totals (across svc
// per-request registries) are available via `cache_stats()`.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "iset/affine.hpp"

namespace dhpf::iset {

class BasicSet;
class Set;
class AffineMap;

namespace memo {

/// Memoized binary/unary set operations (part of the memo key).
enum class Op : std::uint8_t {
  Intersect = 1,
  Unite = 2,
  Subtract = 3,
  Project = 4,
  Apply = 5,
  Preimage = 6,
};

/// Are lookups/stores active? (default on; ISET_NO_CACHE=1 disables)
[[nodiscard]] bool enabled();
/// Programmatic override of the ISET_NO_CACHE default.
void set_cache_enabled(bool on);

/// Drop every memo entry and canonical node (intern ids keep advancing).
/// For differential tests and benchmarks that need a cold start.
void clear_caches();

/// Process-wide totals, independent of the per-request obs registry.
struct CacheStats {
  std::uint64_t intern_nodes = 0;   ///< distinct representations seen
  std::uint64_t intern_reuses = 0;  ///< rep-id lookups served by the table
  std::uint64_t hits = 0;           ///< memo lookups answered
  std::uint64_t misses = 0;         ///< memo lookups that fell through
  std::uint64_t evictions = 0;      ///< entries dropped by shard clears
};
[[nodiscard]] CacheStats cache_stats();

/// Intern arbitrary key bytes -> stable unique id (full-key comparison).
[[nodiscard]] std::uint64_t intern_key(const std::string& bytes);

/// Intern a concrete parameter-value tuple (cardinality/sample memo key).
[[nodiscard]] std::uint64_t intern_point(const std::vector<i64>& pt);

// Set-valued results. The stored node is immutable and shared; hits
// return the node for the caller to copy (rep id rides along).
[[nodiscard]] std::shared_ptr<const Set> set_lookup(Op op, std::uint64_t a,
                                                    std::uint64_t b);
void set_store(Op op, std::uint64_t a, std::uint64_t b, const Set& r);

// BasicSet emptiness.
[[nodiscard]] std::optional<bool> bool_lookup(std::uint64_t a);
void bool_store(std::uint64_t a, bool v);

// Cardinality at a concrete parameter point.
[[nodiscard]] std::optional<std::size_t> count_lookup(std::uint64_t set_id,
                                                      std::uint64_t point_id);
void count_store(std::uint64_t set_id, std::uint64_t point_id, std::size_t n);

// Sample (lex-least point or "empty here") at a concrete parameter point.
struct SampleResult {
  bool has = false;
  std::vector<i64> point;
};
[[nodiscard]] std::optional<SampleResult> sample_lookup(std::uint64_t set_id,
                                                        std::uint64_t point_id);
void sample_store(std::uint64_t set_id, std::uint64_t point_id,
                  const SampleResult& r);

}  // namespace memo

/// Exact-representation serializations (the rep-id key material).
[[nodiscard]] std::string rep_bytes(const BasicSet& bs);
[[nodiscard]] std::string rep_bytes(const Set& s);
[[nodiscard]] std::string rep_bytes(const AffineMap& m);

/// Canonical hash-consed node for `s`: structurally equal sets (up to
/// constraint/part order) built anywhere in the process return the SAME
/// shared node, so equality between interned sets is pointer comparison.
/// The node holds the canonicalized form (sorted constraints/parts), which
/// denotes the same mathematical set as `s`.
[[nodiscard]] std::shared_ptr<const Set> intern(const Set& s);

}  // namespace dhpf::iset
