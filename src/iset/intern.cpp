#include "iset/intern.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "iset/set.hpp"
#include "support/metrics.hpp"

namespace dhpf::iset {

// ------------------------------------------------------- serialization

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_i64(std::string& out, i64 v) { append_u64(out, static_cast<std::uint64_t>(v)); }

void append_params(std::string& out, const Params& p) {
  append_u64(out, p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    append_u64(out, p.name(i).size());
    out.append(p.name(i));
  }
}

void append_expr(std::string& out, const LinExpr& e) {
  for (std::size_t i = 0; i < e.var.size(); ++i) append_i64(out, e.var[i]);
  for (std::size_t i = 0; i < e.param.size(); ++i) append_i64(out, e.param[i]);
  append_i64(out, e.cst);
}

void append_constraint(std::string& out, const Constraint& c) {
  out.push_back(c.is_eq ? '\1' : '\0');
  append_expr(out, c.e);
}

}  // namespace

std::string rep_bytes(const BasicSet& bs) {
  std::string out;
  out.reserve(32 + bs.constraints().size() * 8 * (bs.nvars() + bs.params().size() + 2));
  out.push_back('B');
  append_u64(out, bs.nvars());
  append_params(out, bs.params());
  append_u64(out, bs.constraints().size());
  for (const auto& c : bs.constraints()) append_constraint(out, c);
  return out;
}

std::string rep_bytes(const Set& s) {
  // Parts are identified by their (cached) rep ids, so re-serializing a
  // many-part union after its parts are warm is O(parts), not O(bytes).
  std::string out;
  out.reserve(32 + s.parts().size() * 8);
  out.push_back('S');
  append_u64(out, s.nvars());
  append_params(out, s.params());
  append_u64(out, s.parts().size());
  for (const auto& p : s.parts()) append_u64(out, p.rep_id());
  return out;
}

std::string rep_bytes(const AffineMap& m) {
  std::string out;
  out.push_back('M');
  append_u64(out, m.n_in());
  append_u64(out, m.n_out());
  append_params(out, m.params());
  for (std::size_t o = 0; o < m.n_out(); ++o) append_expr(out, m.out(o));
  return out;
}

// ------------------------------------------------------------- tables

namespace memo {
namespace {

constexpr std::size_t kShards = 16;
constexpr std::size_t kInternShardCap = 1U << 14;  // 16k keys per shard
constexpr std::size_t kMemoShardCap = 1U << 12;    // 4k entries per shard

struct Totals {
  std::atomic<std::uint64_t> intern_nodes{0};
  std::atomic<std::uint64_t> intern_reuses{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
};
Totals& totals() {
  static Totals t;
  return t;
}

std::size_t shard_of(std::size_t hash) { return (hash >> 4) % kShards; }

/// Exact-key intern table: bytes -> unique id. Ids are handed out by one
/// process-wide monotonic counter and are never reused, even after a
/// shard clear — a cached rep id can therefore never alias a different
/// representation.
struct InternTable {
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, std::uint64_t> map;
  };
  Shard shards[kShards];
  std::atomic<std::uint64_t> next{1};

  std::uint64_t get(const std::string& bytes) {
    Shard& sh = shards[shard_of(std::hash<std::string>{}(bytes))];
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.map.find(bytes);
    if (it != sh.map.end()) {
      totals().intern_reuses.fetch_add(1, std::memory_order_relaxed);
      DHPF_COUNTER("iset.intern.reuses");
      return it->second;
    }
    if (sh.map.size() >= kInternShardCap) {
      totals().evictions.fetch_add(sh.map.size(), std::memory_order_relaxed);
      DHPF_COUNTER_ADD("iset.cache.evictions", sh.map.size());
      sh.map.clear();
    }
    const std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
    sh.map.emplace(bytes, id);
    totals().intern_nodes.fetch_add(1, std::memory_order_relaxed);
    DHPF_COUNTER("iset.intern.nodes");
    return id;
  }
};

InternTable& intern_table() {
  static InternTable t;
  return t;
}

struct Key {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    // splitmix-style mix of the three words.
    std::uint64_t h = k.a * 0x9e3779b97f4a7c15ULL;
    h ^= (k.b + 0xbf58476d1ce4e5b9ULL) + (h << 6) + (h >> 2);
    h ^= (k.c + 0x94d049bb133111ebULL) + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

template <typename V>
struct MemoTable {
  struct Shard {
    std::mutex mu;
    std::unordered_map<Key, V, KeyHash> map;
  };
  Shard shards[kShards];

  std::optional<V> lookup(const Key& k) {
    Shard& sh = shards[shard_of(KeyHash{}(k))];
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.map.find(k);
    if (it == sh.map.end()) {
      totals().misses.fetch_add(1, std::memory_order_relaxed);
      DHPF_COUNTER("iset.cache.misses");
      return std::nullopt;
    }
    totals().hits.fetch_add(1, std::memory_order_relaxed);
    DHPF_COUNTER("iset.cache.hits");
    return it->second;
  }

  void store(const Key& k, V v) {
    Shard& sh = shards[shard_of(KeyHash{}(k))];
    std::lock_guard<std::mutex> lock(sh.mu);
    if (sh.map.size() >= kMemoShardCap) {
      totals().evictions.fetch_add(sh.map.size(), std::memory_order_relaxed);
      DHPF_COUNTER_ADD("iset.cache.evictions", sh.map.size());
      sh.map.clear();
    }
    sh.map.emplace(k, std::move(v));
  }

  void clear() {
    for (auto& sh : shards) {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.map.clear();
    }
  }
};

MemoTable<std::shared_ptr<const Set>>& set_memo() {
  static MemoTable<std::shared_ptr<const Set>> t;
  return t;
}
MemoTable<bool>& bool_memo() {
  static MemoTable<bool> t;
  return t;
}
MemoTable<std::size_t>& count_memo() {
  static MemoTable<std::size_t> t;
  return t;
}
MemoTable<SampleResult>& sample_memo() {
  static MemoTable<SampleResult> t;
  return t;
}

/// Canonical-node table: canonical bytes -> shared node.
struct CanonTable {
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const Set>> map;
  };
  Shard shards[kShards];

  std::shared_ptr<const Set> get_or_insert(const std::string& key,
                                           const std::function<Set()>& make) {
    Shard& sh = shards[shard_of(std::hash<std::string>{}(key))];
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.map.find(key);
    if (it != sh.map.end()) return it->second;
    if (sh.map.size() >= kMemoShardCap) {
      totals().evictions.fetch_add(sh.map.size(), std::memory_order_relaxed);
      sh.map.clear();
    }
    auto node = std::make_shared<const Set>(make());
    sh.map.emplace(key, node);
    return node;
  }

  void clear() {
    for (auto& sh : shards) {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.map.clear();
    }
  }
};

CanonTable& canon_table() {
  static CanonTable t;
  return t;
}

std::atomic<int> g_enabled{-1};

}  // namespace

bool enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("ISET_NO_CACHE");
    v = (e != nullptr && *e != '\0' && *e != '0') ? 0 : 1;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_cache_enabled(bool on) { g_enabled.store(on ? 1 : 0, std::memory_order_relaxed); }

void clear_caches() {
  set_memo().clear();
  bool_memo().clear();
  count_memo().clear();
  sample_memo().clear();
  canon_table().clear();
}

CacheStats cache_stats() {
  Totals& t = totals();
  CacheStats s;
  s.intern_nodes = t.intern_nodes.load(std::memory_order_relaxed);
  s.intern_reuses = t.intern_reuses.load(std::memory_order_relaxed);
  s.hits = t.hits.load(std::memory_order_relaxed);
  s.misses = t.misses.load(std::memory_order_relaxed);
  s.evictions = t.evictions.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t intern_key(const std::string& bytes) { return intern_table().get(bytes); }

std::uint64_t intern_point(const std::vector<i64>& pt) {
  std::string out;
  out.reserve(9 + pt.size() * 8);
  out.push_back('P');
  append_u64(out, pt.size());
  for (i64 v : pt) append_i64(out, v);
  return intern_table().get(out);
}

std::shared_ptr<const Set> set_lookup(Op op, std::uint64_t a, std::uint64_t b) {
  auto hit = set_memo().lookup(Key{static_cast<std::uint64_t>(op), a, b});
  return hit ? *hit : nullptr;
}

void set_store(Op op, std::uint64_t a, std::uint64_t b, const Set& r) {
  // Warm the result's rep id before freezing it in the table, so copies
  // handed out on hits inherit a computed id.
  (void)r.rep_id();
  set_memo().store(Key{static_cast<std::uint64_t>(op), a, b},
                   std::make_shared<const Set>(r));
}

std::optional<bool> bool_lookup(std::uint64_t a) { return bool_memo().lookup(Key{0, a, 0}); }

void bool_store(std::uint64_t a, bool v) { bool_memo().store(Key{0, a, 0}, v); }

std::optional<std::size_t> count_lookup(std::uint64_t set_id, std::uint64_t point_id) {
  return count_memo().lookup(Key{set_id, point_id, 1});
}

void count_store(std::uint64_t set_id, std::uint64_t point_id, std::size_t n) {
  count_memo().store(Key{set_id, point_id, 1}, n);
}

std::optional<SampleResult> sample_lookup(std::uint64_t set_id, std::uint64_t point_id) {
  return sample_memo().lookup(Key{set_id, point_id, 2});
}

void sample_store(std::uint64_t set_id, std::uint64_t point_id, const SampleResult& r) {
  sample_memo().store(Key{set_id, point_id, 2}, r);
}

}  // namespace memo

// ------------------------------------------------------ rep-id caching

std::uint64_t BasicSet::rep_id() const {
  std::uint64_t v = rep_.load(std::memory_order_relaxed);
  if (v != 0) return v;
  v = memo::intern_key(rep_bytes(*this));
  // A concurrent caller computes the same id from the same bytes, so the
  // race on this store is value-benign.
  rep_.store(v, std::memory_order_relaxed);
  return v;
}

std::uint64_t Set::rep_id() const {
  std::uint64_t v = rep_.load(std::memory_order_relaxed);
  if (v != 0) return v;
  v = memo::intern_key(rep_bytes(*this));
  rep_.store(v, std::memory_order_relaxed);
  return v;
}

// ------------------------------------------------------ canonical nodes

namespace {

/// Canonical serialization of one part: constraints sorted by their bytes.
std::string canon_part_bytes(const BasicSet& bs, BasicSet* rebuilt) {
  std::vector<std::string> rows;
  rows.reserve(bs.constraints().size());
  std::vector<const Constraint*> by_bytes(bs.constraints().size());
  for (std::size_t i = 0; i < bs.constraints().size(); ++i) {
    std::string row;
    row.push_back(bs.constraints()[i].is_eq ? '\1' : '\0');
    for (std::size_t v = 0; v < bs.constraints()[i].e.var.size(); ++v)
      append_i64(row, bs.constraints()[i].e.var[v]);
    for (std::size_t p = 0; p < bs.constraints()[i].e.param.size(); ++p)
      append_i64(row, bs.constraints()[i].e.param[p]);
    append_i64(row, bs.constraints()[i].e.cst);
    rows.push_back(std::move(row));
    by_bytes[i] = &bs.constraints()[i];
  }
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return rows[a] < rows[b]; });
  std::string out;
  append_u64(out, bs.nvars());
  append_u64(out, rows.size());
  for (std::size_t i : order) {
    out.append(rows[i]);
    if (rebuilt != nullptr) rebuilt->add(*by_bytes[i]);
  }
  return out;
}

}  // namespace

std::shared_ptr<const Set> intern(const Set& s) {
  // Canonical key: parts with sorted constraints, parts themselves sorted.
  struct CanonPart {
    std::string bytes;
    BasicSet part;
  };
  std::vector<CanonPart> parts;
  parts.reserve(s.parts().size());
  for (const auto& p : s.parts()) {
    BasicSet rebuilt(p.nvars(), p.params());
    std::string bytes = canon_part_bytes(p, &rebuilt);
    parts.push_back(CanonPart{std::move(bytes), std::move(rebuilt)});
  }
  std::sort(parts.begin(), parts.end(),
            [](const CanonPart& a, const CanonPart& b) { return a.bytes < b.bytes; });
  std::string key;
  key.push_back('C');
  append_u64(key, s.nvars());
  {
    std::string pbytes;
    append_params(pbytes, s.params());
    key.append(pbytes);
  }
  append_u64(key, parts.size());
  for (const auto& p : parts) key.append(p.bytes);

  return memo::canon_table().get_or_insert(key, [&]() {
    Set canon(s.nvars(), s.params());
    for (auto& p : parts) canon.parts_.push_back(std::move(p.part));
    return canon;
  });
}

}  // namespace dhpf::iset
