// Thread-local pool allocator for transient iset nodes (tentpole: arena
// allocation). Set algebra churns through short-lived coefficient rows and
// constraint vectors; routing them through a per-thread size-binned
// freelist turns the vast majority of those malloc/free pairs into two
// pointer moves with no lock. Blocks above the largest bin fall through to
// `::operator new`.
//
// Thread-safety: each thread owns its bins, so alloc/dealloc never
// synchronize. A block may legally be freed on a different thread than the
// one that allocated it (moves hand SmallVec heap blocks across threads in
// the parallel pass driver) — it is simply recycled into the freeing
// thread's bin. Bins are bounded, and everything still cached is released
// on thread exit, so ASan/LSan stay clean.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dhpf::iset::arena {

/// Allocate `bytes` (rounded up to the owning bin's block size).
[[nodiscard]] void* alloc(std::size_t bytes);

/// Return a block obtained from alloc(). `bytes` must be the size passed
/// to alloc() (the bin is re-derived from it).
void dealloc(void* p, std::size_t bytes);

struct Stats {
  std::uint64_t allocs = 0;      ///< total alloc() calls, this thread
  std::uint64_t pool_hits = 0;   ///< served from a freelist bin
  std::uint64_t fallbacks = 0;   ///< above max bin size -> operator new
};

/// This thread's allocator statistics.
[[nodiscard]] Stats stats();

}  // namespace dhpf::iset::arena
