#include "iset/arena.hpp"

#include <new>

namespace dhpf::iset::arena {
namespace {

// Power-of-two bins from 16 bytes to 1 KiB. A coefficient row at rank 4
// with two grid params is 48 bytes, so nearly every spill lands in the
// small bins; anything above kMaxBin goes straight to operator new.
constexpr std::size_t kMinBinShift = 4;   // 16 B
constexpr std::size_t kMaxBinShift = 10;  // 1 KiB
constexpr std::size_t kBins = kMaxBinShift - kMinBinShift + 1;
constexpr std::size_t kMaxBin = std::size_t{1} << kMaxBinShift;
// Per-bin cache depth: deep enough to absorb a pass's transient churn,
// shallow enough that idle threads hold < 100 KiB each.
constexpr std::size_t kMaxFree = 64;

struct FreeBlock {
  FreeBlock* next;
};

struct Bins {
  FreeBlock* head[kBins] = {};
  std::size_t depth[kBins] = {};
  Stats stats;

  ~Bins() {
    for (std::size_t b = 0; b < kBins; ++b) {
      FreeBlock* p = head[b];
      while (p != nullptr) {
        FreeBlock* next = p->next;
        ::operator delete(p);
        p = next;
      }
    }
  }
};

Bins& bins() {
  thread_local Bins tls;
  return tls;
}

// Bin index for a request, or kBins if it exceeds the largest bin.
std::size_t bin_for(std::size_t bytes) {
  std::size_t size = std::size_t{1} << kMinBinShift;
  std::size_t b = 0;
  while (size < bytes && b < kBins) {
    size <<= 1;
    ++b;
  }
  return b;
}

}  // namespace

void* alloc(std::size_t bytes) {
  Bins& tls = bins();
  ++tls.stats.allocs;
  if (bytes > kMaxBin) {
    ++tls.stats.fallbacks;
    return ::operator new(bytes);
  }
  const std::size_t b = bin_for(bytes);
  if (FreeBlock* p = tls.head[b]) {
    tls.head[b] = p->next;
    --tls.depth[b];
    ++tls.stats.pool_hits;
    return p;
  }
  return ::operator new(std::size_t{1} << (kMinBinShift + b));
}

void dealloc(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  if (bytes > kMaxBin) {
    ::operator delete(p);
    return;
  }
  Bins& tls = bins();
  const std::size_t b = bin_for(bytes);
  if (tls.depth[b] >= kMaxFree) {
    ::operator delete(p);
    return;
  }
  auto* block = static_cast<FreeBlock*>(p);
  block->next = tls.head[b];
  tls.head[b] = block;
  ++tls.depth[b];
}

Stats stats() { return bins().stats; }

}  // namespace dhpf::iset::arena
