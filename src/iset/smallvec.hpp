// Small-buffer vector for constraint coefficient rows (tentpole: small-tuple
// inline storage). `LinExpr` keeps its variable/parameter coefficients in a
// `SmallVec<i64, N>`: tuples up to rank N live inline in the expression
// object (no allocation at all), and larger rows spill to the thread-local
// size-binned pool in iset/arena.hpp instead of raw malloc — the fuzz
// campaign's millions of transient constraint rows stop hammering the
// global allocator either way.
//
// Only the slice of the std::vector API the set algebra actually uses is
// provided (operator[], size, begin/end, assign, push_back, erase,
// equality, copy/move). Element type must be trivially copyable; there is
// no exception-safety subtlety because growth only memcpys PODs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>

#include "iset/arena.hpp"

namespace dhpf::iset {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is for POD coefficient rows only");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;

  SmallVec(const SmallVec& o) { append(o.data_, o.size_); }

  SmallVec(SmallVec&& o) noexcept {
    if (o.on_heap()) {
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = o.inline_;
      o.size_ = 0;
      o.cap_ = N;
    } else {
      append(o.data_, o.size_);
      o.size_ = 0;
    }
  }

  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      size_ = 0;
      append(o.data_, o.size_);
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this == &o) return *this;
    release();
    size_ = 0;
    if (o.on_heap()) {
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = o.inline_;
      o.size_ = 0;
      o.cap_ = N;
    } else {
      append(o.data_, o.size_);
      o.size_ = 0;
    }
    return *this;
  }

  ~SmallVec() { release(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] iterator begin() { return data_; }
  [[nodiscard]] iterator end() { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const { return data_; }
  [[nodiscard]] const_iterator end() const { return data_ + size_; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void assign(std::size_t n, const T& v) {
    reserve(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = v;
    size_ = n;
  }

  void resize(std::size_t n, const T& v = T{}) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = v;
    size_ = n;
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_++] = v;
  }

  /// Erase the element at `pos` (shift-left; pointers past it invalidate).
  iterator erase(iterator pos) {
    for (T* p = pos; p + 1 < end(); ++p) *p = *(p + 1);
    --size_;
    return pos;
  }

  [[nodiscard]] bool operator==(const SmallVec& o) const {
    if (size_ != o.size_) return false;
    return std::equal(begin(), end(), o.begin());
  }

 private:
  [[nodiscard]] bool on_heap() const { return data_ != inline_; }

  void release() {
    if (on_heap()) {
      arena::dealloc(data_, cap_ * sizeof(T));
      data_ = inline_;
      cap_ = N;
    }
  }

  void append(const T* src, std::size_t n) {
    reserve(n);
    if (n != 0) std::memcpy(data_ + size_, src, n * sizeof(T));
    size_ += n;
  }

  void grow(std::size_t need) {
    std::size_t cap = cap_ * 2;
    if (cap < need) cap = need;
    T* fresh = static_cast<T*>(arena::alloc(cap * sizeof(T)));
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    release();
    data_ = fresh;
    cap_ = cap;
  }

  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
  T inline_[N];
};

}  // namespace dhpf::iset
