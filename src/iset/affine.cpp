#include "iset/affine.hpp"

#include <numeric>
#include <sstream>

#include "support/diagnostics.hpp"

namespace dhpf::iset {

i64 gcd(i64 a, i64 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::size_t Params::index(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  fail("iset", "unknown parameter: " + name);
}

bool Params::has(const std::string& name) const {
  for (const auto& n : names_)
    if (n == name) return true;
  return false;
}

LinExpr LinExpr::zero(std::size_t nvars, std::size_t nparams) {
  LinExpr e;
  e.var.assign(nvars, 0);
  e.param.assign(nparams, 0);
  return e;
}

LinExpr LinExpr::variable(std::size_t nvars, std::size_t nparams, std::size_t v, i64 coef) {
  LinExpr e = zero(nvars, nparams);
  require(v < nvars, "iset", "variable index out of range");
  e.var[v] = coef;
  return e;
}

LinExpr LinExpr::constant(std::size_t nvars, std::size_t nparams, i64 c) {
  LinExpr e = zero(nvars, nparams);
  e.cst = c;
  return e;
}

LinExpr LinExpr::parameter(std::size_t nvars, std::size_t nparams, std::size_t p, i64 coef) {
  LinExpr e = zero(nvars, nparams);
  require(p < nparams, "iset", "parameter index out of range");
  e.param[p] = coef;
  return e;
}

LinExpr& LinExpr::operator+=(const LinExpr& o) {
  require(var.size() == o.var.size() && param.size() == o.param.size(), "iset",
          "mismatched expression spaces");
  for (std::size_t i = 0; i < var.size(); ++i) var[i] += o.var[i];
  for (std::size_t i = 0; i < param.size(); ++i) param[i] += o.param[i];
  cst += o.cst;
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& o) {
  *this += o.negated();
  return *this;
}

LinExpr& LinExpr::operator*=(i64 s) {
  for (auto& c : var) c *= s;
  for (auto& c : param) c *= s;
  cst *= s;
  return *this;
}

LinExpr LinExpr::operator+(const LinExpr& o) const {
  LinExpr r = *this;
  r += o;
  return r;
}

LinExpr LinExpr::operator-(const LinExpr& o) const {
  LinExpr r = *this;
  r -= o;
  return r;
}

LinExpr LinExpr::operator*(i64 s) const {
  LinExpr r = *this;
  r *= s;
  return r;
}

bool LinExpr::is_constant() const {
  for (i64 c : var)
    if (c != 0) return false;
  for (i64 c : param)
    if (c != 0) return false;
  return true;
}

i64 LinExpr::eval(const std::vector<i64>& vars, const std::vector<i64>& params) const {
  require(vars.size() == var.size() && params.size() == param.size(), "iset",
          "eval: wrong number of values");
  i64 acc = cst;
  for (std::size_t i = 0; i < var.size(); ++i) acc += var[i] * vars[i];
  for (std::size_t i = 0; i < param.size(); ++i) acc += param[i] * params[i];
  return acc;
}

i64 LinExpr::normalize_gcd() {
  i64 g = 0;
  for (i64 c : var) g = gcd(g, c);
  for (i64 c : param) g = gcd(g, c);
  g = gcd(g, cst);
  if (g > 1) {
    for (auto& c : var) c /= g;
    for (auto& c : param) c /= g;
    cst /= g;
  }
  return g == 0 ? 1 : g;
}

namespace {
void append_term(std::ostringstream& out, bool& first, i64 coef, const std::string& name) {
  if (coef == 0) return;
  if (first) {
    if (coef == -1)
      out << "-";
    else if (coef != 1)
      out << coef << "*";
  } else {
    out << (coef > 0 ? " + " : " - ");
    const i64 a = coef > 0 ? coef : -coef;
    if (a != 1) out << a << "*";
  }
  out << name;
  first = false;
}
}  // namespace

std::string LinExpr::to_string(const Params& params,
                               const std::vector<std::string>& var_names) const {
  std::ostringstream out;
  bool first = true;
  for (std::size_t i = 0; i < var.size(); ++i) {
    const std::string name =
        i < var_names.size() ? var_names[i] : ("x" + std::to_string(i));
    append_term(out, first, var[i], name);
  }
  for (std::size_t i = 0; i < param.size(); ++i)
    append_term(out, first, param[i], params.name(i));
  if (first)
    out << cst;
  else if (cst > 0)
    out << " + " << cst;
  else if (cst < 0)
    out << " - " << -cst;
  return out.str();
}

std::string Constraint::to_string(const Params& params,
                                  const std::vector<std::string>& var_names) const {
  return e.to_string(params, var_names) + (is_eq ? " == 0" : " >= 0");
}

}  // namespace dhpf::iset
