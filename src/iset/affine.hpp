// Affine expressions and constraints over integer tuple variables and
// symbolic parameters — the vocabulary of the dHPF integer-set framework
// (paper §2, [Adve & Mellor-Crummey PLDI'98]).
//
// An expression is  sum_i a_i * x_i + sum_j b_j * p_j + c  with integer
// coefficients, where x_i are the set's tuple variables and p_j are named
// symbolic parameters (processor ids, block sizes, array extents...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iset/smallvec.hpp"

namespace dhpf::iset {

using i64 = std::int64_t;

/// Coefficient row with inline storage: tuples up to rank 8 (every dHPF
/// workload — data/iteration spaces are rank <= 4, params are lb/ub per
/// grid dim) never touch the heap; larger rows spill to the iset arena.
using CoefRow = SmallVec<i64, 8>;

/// The parameter context of a set: an ordered list of parameter names.
/// Sets/maps operating together must share an identical Params object.
class Params {
 public:
  Params() = default;
  explicit Params(std::vector<std::string> names) : names_(std::move(names)) {}

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const { return names_[i]; }
  /// Index of `name`; throws if absent.
  [[nodiscard]] std::size_t index(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] bool operator==(const Params&) const = default;

 private:
  std::vector<std::string> names_;
};

/// Affine expression over n tuple variables and the parameters.
struct LinExpr {
  CoefRow var;    // coefficient per tuple variable
  CoefRow param;  // coefficient per parameter
  i64 cst = 0;

  static LinExpr zero(std::size_t nvars, std::size_t nparams);
  static LinExpr variable(std::size_t nvars, std::size_t nparams, std::size_t v, i64 coef = 1);
  static LinExpr constant(std::size_t nvars, std::size_t nparams, i64 c);
  static LinExpr parameter(std::size_t nvars, std::size_t nparams, std::size_t p,
                           i64 coef = 1);

  [[nodiscard]] std::size_t nvars() const { return var.size(); }

  LinExpr& operator+=(const LinExpr& o);
  LinExpr& operator-=(const LinExpr& o);
  LinExpr& operator*=(i64 s);
  [[nodiscard]] LinExpr operator+(const LinExpr& o) const;
  [[nodiscard]] LinExpr operator-(const LinExpr& o) const;
  [[nodiscard]] LinExpr operator*(i64 s) const;
  [[nodiscard]] LinExpr negated() const { return *this * -1; }
  [[nodiscard]] bool operator==(const LinExpr&) const = default;

  [[nodiscard]] bool is_constant() const;
  /// Evaluate with concrete variable and parameter values.
  [[nodiscard]] i64 eval(const std::vector<i64>& vars, const std::vector<i64>& params) const;

  /// Divide all coefficients by their (positive) gcd; returns the gcd used.
  i64 normalize_gcd();

  [[nodiscard]] std::string to_string(const Params& params,
                                      const std::vector<std::string>& var_names = {}) const;
};

/// A single affine constraint: e >= 0 (inequality) or e == 0 (equality).
struct Constraint {
  LinExpr e;
  bool is_eq = false;

  static Constraint ge0(LinExpr e) { return Constraint{std::move(e), false}; }
  static Constraint eq0(LinExpr e) { return Constraint{std::move(e), true}; }

  [[nodiscard]] bool operator==(const Constraint&) const = default;
  [[nodiscard]] bool satisfied(const std::vector<i64>& vars,
                               const std::vector<i64>& params) const {
    const i64 v = e.eval(vars, params);
    return is_eq ? v == 0 : v >= 0;
  }
  [[nodiscard]] std::string to_string(const Params& params,
                                      const std::vector<std::string>& var_names = {}) const;
};

i64 gcd(i64 a, i64 b);

}  // namespace dhpf::iset
