#include "iset/set.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "iset/intern.hpp"
#include "support/diagnostics.hpp"
#include "support/metrics.hpp"

namespace dhpf::iset {

// ------------------------------------------------------------- BasicSet

void BasicSet::add(Constraint c) {
  require(c.e.var.size() == nvars_ && c.e.param.size() == params_.size(), "iset",
          "constraint space mismatch");
  cs_.push_back(std::move(c));
  rep_.store(0, std::memory_order_relaxed);
}

void BasicSet::add_bounds(std::size_t v, const LinExpr& lo, const LinExpr& hi) {
  add(Constraint::ge0(expr_var(v) - lo));
  add(Constraint::ge0(hi - expr_var(v)));
}

void BasicSet::add_eq(std::size_t v, const LinExpr& value) {
  add(Constraint::eq0(expr_var(v) - value));
}

BasicSet BasicSet::intersect(const BasicSet& o) const {
  require(nvars_ == o.nvars_ && params_ == o.params_, "iset", "intersect: space mismatch");
  BasicSet r = *this;
  for (const auto& c : o.cs_) r.cs_.push_back(c);
  r.rep_.store(0, std::memory_order_relaxed);
  return r;
}

namespace {

/// Remove dimension v from an expression (its coefficient must be zero).
LinExpr drop_var(const LinExpr& e, std::size_t v) {
  LinExpr r = e;
  r.var.erase(r.var.begin() + static_cast<std::ptrdiff_t>(v));
  return r;
}

}  // namespace

BasicSet BasicSet::project_out(std::size_t v) const {
  require(v < nvars_, "iset", "project_out: variable out of range");
  DHPF_COUNTER("iset.projections");
  BasicSet out(nvars_ - 1, params_);

  // Split constraints on whether they mention v.
  std::vector<Constraint> eqs, lowers, uppers, rest;
  for (const auto& c : cs_) {
    const i64 a = c.e.var[v];
    if (a == 0)
      rest.push_back(c);
    else if (c.is_eq)
      eqs.push_back(c);
    else if (a > 0)
      lowers.push_back(c);  // a*v + f >= 0 -> lower bound on v
    else
      uppers.push_back(c);  // a*v + f >= 0, a<0 -> upper bound on v
  }

  if (!eqs.empty()) {
    DHPF_COUNTER("iset.eq_substitutions");
    // Integer-exact substitution through an equality: normalize a > 0, then
    // for any constraint b*v + f (>=|==) 0, replace with a*f - b*g where
    // a*v + g == 0 (scaling an inequality by a > 0 preserves it).
    Constraint eq = eqs.front();
    if (eq.e.var[v] < 0) eq.e *= -1;
    const i64 a = eq.e.var[v];
    LinExpr g = eq.e;  // a*v + g_rest; we use the whole expr and cancel v
    auto substitute = [&](const Constraint& c) {
      const i64 b = c.e.var[v];
      LinExpr r = c.e * a - g * b;  // coefficient of v: b*a - a*b = 0
      Constraint nc{drop_var(r, v), c.is_eq};
      nc.e.normalize_gcd();
      return nc;
    };
    for (std::size_t i = 1; i < eqs.size(); ++i) out.cs_.push_back(substitute(eqs[i]));
    for (const auto& c : lowers) out.cs_.push_back(substitute(c));
    for (const auto& c : uppers) out.cs_.push_back(substitute(c));
    for (const auto& c : rest) out.cs_.push_back(Constraint{drop_var(c.e, v), c.is_eq});
    return out;
  }

  // Fourier-Motzkin pairs (rational).
  DHPF_COUNTER("iset.fm_projections");
  DHPF_COUNTER_ADD("iset.fm_pair_constraints", lowers.size() * uppers.size());
  for (const auto& lo : lowers)
    for (const auto& up : uppers) {
      const i64 a = lo.e.var[v];    // > 0
      const i64 b = -up.e.var[v];   // > 0
      LinExpr r = lo.e * b + up.e * a;  // v-coefficient: a*b - b*a = 0
      Constraint nc{drop_var(r, v), false};
      nc.e.normalize_gcd();
      out.cs_.push_back(std::move(nc));
    }
  for (const auto& c : rest) out.cs_.push_back(Constraint{drop_var(c.e, v), c.is_eq});
  out.simplify();
  return out;
}

bool BasicSet::simplify() {
  std::vector<Constraint> kept;
  for (auto c : cs_) {
    c.e.normalize_gcd();
    if (c.e.is_constant()) {
      const bool ok = c.is_eq ? (c.e.cst == 0) : (c.e.cst >= 0);
      if (!ok) {
        // Statically infeasible: mark by a canonical false constraint.
        cs_.clear();
        cs_.push_back(Constraint::ge0(expr_const(-1)));
        rep_.store(0, std::memory_order_relaxed);
        return false;
      }
      continue;  // tautology
    }
    bool dup = false;
    for (const auto& k : kept)
      if (k == c) {
        dup = true;
        break;
      }
    if (!dup) kept.push_back(std::move(c));
  }
  cs_ = std::move(kept);
  rep_.store(0, std::memory_order_relaxed);
  return true;
}

bool BasicSet::is_empty() const {
  DHPF_COUNTER("iset.emptiness_tests");
  std::uint64_t key = 0;
  const bool cache = memo::enabled();
  if (cache) {
    key = rep_id();
    if (auto hit = memo::bool_lookup(key)) return *hit;
  }
  const bool result = [&] {
    BasicSet work = *this;
    if (!work.simplify()) return true;
    // Eliminate all tuple variables...
    while (work.nvars_ > 0) {
      work = work.project_out(work.nvars_ - 1);
      if (!work.simplify()) return true;
    }
    // ...then treat parameters as variables and eliminate them too.
    BasicSet ground(params_.size(), Params{});
    for (const auto& c : work.cs_) {
      LinExpr e = LinExpr::zero(params_.size(), 0);
      e.var = c.e.param;
      e.cst = c.e.cst;
      ground.cs_.push_back(Constraint{std::move(e), c.is_eq});
    }
    if (!ground.simplify()) return true;
    while (ground.nvars_ > 0) {
      ground = ground.project_out(ground.nvars_ - 1);
      if (!ground.simplify()) return true;
    }
    for (const auto& c : ground.cs_) {
      if (c.is_eq ? (c.e.cst != 0) : (c.e.cst < 0)) return true;
    }
    return false;
  }();
  if (cache) memo::bool_store(key, result);
  return result;
}

bool BasicSet::contains(const std::vector<i64>& vars, const std::vector<i64>& params) const {
  for (const auto& c : cs_)
    if (!c.satisfied(vars, params)) return false;
  return true;
}

std::string BasicSet::to_string(const std::vector<std::string>& var_names) const {
  std::ostringstream out;
  out << "{ ";
  for (std::size_t v = 0; v < nvars_; ++v) {
    if (v) out << ", ";
    out << (v < var_names.size() ? var_names[v] : "x" + std::to_string(v));
  }
  out << " : ";
  for (std::size_t i = 0; i < cs_.size(); ++i) {
    if (i) out << " and ";
    out << cs_[i].to_string(params_, var_names);
  }
  if (cs_.empty()) out << "true";
  out << " }";
  return out.str();
}

// ------------------------------------------------------------------ Set

namespace {

/// High-water mark of union fragmentation (parts in any Set an algebra
/// operation produced or consumed) — the before-picture for the planned
/// hash-consing/simplification work. Published as a gauge only when the
/// maximum actually moves, so the hot path stays a relaxed load.
void note_fragmentation(std::size_t parts) {
  static std::atomic<std::size_t> high{0};
  std::size_t cur = high.load(std::memory_order_relaxed);
  while (parts > cur &&
         !high.compare_exchange_weak(cur, parts, std::memory_order_relaxed)) {
  }
  if (parts > cur)
    obs::Registry::current().set_gauge("iset.max_fragmentation", static_cast<double>(parts));
}

}  // namespace

Set::Set(BasicSet bs) : nvars_(bs.nvars()), params_(bs.params()) {
  parts_.push_back(std::move(bs));
}

void Set::add_part(BasicSet bs) {
  require(bs.nvars() == nvars_ && bs.params() == params_, "iset", "add_part: space mismatch");
  DHPF_COUNTER("iset.polyhedra_created");
  if (bs.simplify() && !bs.is_empty()) parts_.push_back(std::move(bs));
  rep_.store(0, std::memory_order_relaxed);
}

Set Set::unite(const Set& o) const {
  require(nvars_ == o.nvars_ && params_ == o.params_, "iset", "unite: space mismatch");
  DHPF_COUNTER("iset.op.unions");
  DHPF_COUNTER_ADD("iset.op.operand_parts", parts_.size() + o.parts_.size());
  std::uint64_t ka = 0, kb = 0;
  const bool cache = memo::enabled();
  if (cache) {
    ka = rep_id();
    kb = o.rep_id();
    if (auto hit = memo::set_lookup(memo::Op::Unite, ka, kb)) return *hit;
  }
  Set r = *this;
  for (const auto& p : o.parts_) r.parts_.push_back(p);
  r.rep_.store(0, std::memory_order_relaxed);
  note_fragmentation(r.parts_.size());
  if (cache) memo::set_store(memo::Op::Unite, ka, kb, r);
  return r;
}

Set Set::intersect(const Set& o) const {
  require(nvars_ == o.nvars_ && params_ == o.params_, "iset", "intersect: space mismatch");
  DHPF_COUNTER("iset.op.intersections");
  DHPF_COUNTER_ADD("iset.op.operand_parts", parts_.size() + o.parts_.size());
  std::uint64_t ka = 0, kb = 0;
  const bool cache = memo::enabled();
  if (cache) {
    ka = rep_id();
    kb = o.rep_id();
    if (auto hit = memo::set_lookup(memo::Op::Intersect, ka, kb)) return *hit;
  }
  Set r(nvars_, params_);
  for (const auto& a : parts_)
    for (const auto& b : o.parts_) r.add_part(a.intersect(b));
  note_fragmentation(r.parts_.size());
  if (cache) memo::set_store(memo::Op::Intersect, ka, kb, r);
  return r;
}

Set Set::subtract(const Set& o) const {
  require(nvars_ == o.nvars_ && params_ == o.params_, "iset", "subtract: space mismatch");
  DHPF_COUNTER("iset.op.differences");
  DHPF_COUNTER_ADD("iset.op.operand_parts", parts_.size() + o.parts_.size());
  std::uint64_t ka = 0, kb = 0;
  const bool cache = memo::enabled();
  if (cache) {
    ka = rep_id();
    kb = o.rep_id();
    if (auto hit = memo::set_lookup(memo::Op::Subtract, ka, kb)) return *hit;
  }
  // A - (B1 ∪ B2 ∪ ...) = A ∩ ¬B1 ∩ ¬B2 ∩ ...; each ¬Bi is a union over its
  // negated constraints (integer-exact: ¬(e >= 0) is -e-1 >= 0).
  std::vector<BasicSet> acc = parts_;
  for (const auto& b : o.parts_) {
    std::vector<BasicSet> next;
    for (const auto& a : acc) {
      for (const auto& c : b.constraints()) {
        if (c.is_eq) {
          BasicSet lt = a;
          lt.add(Constraint::ge0(c.e * -1 - lt.expr_const(1) + lt.expr_zero()));
          if (lt.simplify() && !lt.is_empty()) next.push_back(std::move(lt));
          BasicSet gt = a;
          gt.add(Constraint::ge0(c.e - gt.expr_const(1) + gt.expr_zero()));
          if (gt.simplify() && !gt.is_empty()) next.push_back(std::move(gt));
        } else {
          BasicSet neg = a;
          neg.add(Constraint::ge0(c.e * -1 - neg.expr_const(1) + neg.expr_zero()));
          if (neg.simplify() && !neg.is_empty()) next.push_back(std::move(neg));
        }
      }
      if (b.constraints().empty()) {
        // Subtracting the universe annihilates everything.
      }
    }
    acc = std::move(next);
    if (acc.empty()) break;
  }
  Set r(nvars_, params_);
  for (auto& bs : acc) r.parts_.push_back(std::move(bs));
  note_fragmentation(r.parts_.size());
  if (cache) memo::set_store(memo::Op::Subtract, ka, kb, r);
  return r;
}

Set Set::project_out(std::size_t v) const {
  std::uint64_t ka = 0;
  const bool cache = memo::enabled();
  if (cache) {
    ka = rep_id();
    if (auto hit = memo::set_lookup(memo::Op::Project, ka, v)) return *hit;
  }
  Set r(nvars_ - 1, params_);
  for (const auto& p : parts_) r.add_part(p.project_out(v));
  if (cache) memo::set_store(memo::Op::Project, ka, v, r);
  return r;
}

bool Set::is_empty() const {
  for (const auto& p : parts_)
    if (!p.is_empty()) return false;
  return true;
}

bool Set::contains(const std::vector<i64>& vars, const std::vector<i64>& params) const {
  for (const auto& p : parts_)
    if (p.contains(vars, params)) return true;
  return false;
}

Set Set::apply(const AffineMap& map) const {
  require(map.n_in() == nvars_ && map.params() == params_, "iset", "apply: space mismatch");
  std::uint64_t ka = 0, kb = 0;
  const bool cache = memo::enabled();
  if (cache) {
    ka = rep_id();
    kb = memo::intern_key(rep_bytes(map));
    if (auto hit = memo::set_lookup(memo::Op::Apply, ka, kb)) return *hit;
  }
  const std::size_t m = map.n_out();
  Set r(m, params_);
  for (const auto& p : parts_) {
    // Variables: [y_0..y_{m-1}, x_0..x_{n-1}]; add y_i == f_i(x), then
    // eliminate the x block.
    BasicSet ext(m + nvars_, params_);
    for (const auto& c : p.constraints()) {
      LinExpr e = LinExpr::zero(m + nvars_, params_.size());
      for (std::size_t i = 0; i < nvars_; ++i) e.var[m + i] = c.e.var[i];
      e.param = c.e.param;
      e.cst = c.e.cst;
      ext.add(Constraint{std::move(e), c.is_eq});
    }
    for (std::size_t o = 0; o < m; ++o) {
      LinExpr e = LinExpr::zero(m + nvars_, params_.size());
      e.var[o] = 1;
      const LinExpr& f = map.out(o);
      for (std::size_t i = 0; i < nvars_; ++i) e.var[m + i] -= f.var[i];
      for (std::size_t j = 0; j < params_.size(); ++j) e.param[j] -= f.param[j];
      e.cst -= f.cst;
      ext.add(Constraint::eq0(std::move(e)));
    }
    BasicSet proj = ext;
    for (std::size_t i = 0; i < nvars_; ++i) proj = proj.project_out(proj.nvars() - 1);
    r.add_part(std::move(proj));
  }
  if (cache) memo::set_store(memo::Op::Apply, ka, kb, r);
  return r;
}

Set Set::preimage(const AffineMap& map) const {
  require(map.n_out() == nvars_ && map.params() == params_, "iset",
          "preimage: space mismatch");
  std::uint64_t ka = 0, kb = 0;
  const bool cache = memo::enabled();
  if (cache) {
    ka = rep_id();
    kb = memo::intern_key(rep_bytes(map));
    if (auto hit = memo::set_lookup(memo::Op::Preimage, ka, kb)) return *hit;
  }
  Set r(map.n_in(), params_);
  for (const auto& p : parts_) {
    BasicSet bs(map.n_in(), params_);
    for (const auto& c : p.constraints()) {
      LinExpr e = LinExpr::constant(map.n_in(), params_.size(), c.e.cst);
      for (std::size_t j = 0; j < params_.size(); ++j) e.param[j] += c.e.param[j];
      for (std::size_t i = 0; i < nvars_; ++i) e += map.out(i) * c.e.var[i];
      bs.add(Constraint{std::move(e), c.is_eq});
    }
    r.add_part(std::move(bs));
  }
  if (cache) memo::set_store(memo::Op::Preimage, ka, kb, r);
  return r;
}

namespace {

/// Rational bounds of variable v in bs (given concrete params and outer
/// variables already substituted): returns [lo, hi] candidates.
bool var_bounds(const BasicSet& bs, const std::vector<i64>& params, std::size_t v,
                const std::vector<i64>& fixed, i64* lo, i64* hi) {
  // fixed holds values for vars [0, v); vars > v must already be projected
  // away by the caller.
  bool has_lo = false, has_hi = false;
  i64 best_lo = 0, best_hi = 0;
  for (const auto& c : bs.constraints()) {
    const i64 a = c.e.var[v];
    // residual = contribution of fixed vars + params + cst
    i64 res = c.e.cst;
    for (std::size_t i = 0; i < v; ++i) res += c.e.var[i] * fixed[i];
    for (std::size_t j = 0; j < params.size(); ++j) res += c.e.param[j] * params[j];
    bool higher_vars = false;
    for (std::size_t i = v + 1; i < c.e.var.size(); ++i)
      if (c.e.var[i] != 0) higher_vars = true;
    if (higher_vars) continue;  // handled by the projected copies
    if (a == 0) {
      if (c.is_eq ? (res != 0) : (res < 0)) return false;  // infeasible here
      continue;
    }
    // a*v + res >= 0 (or == 0)
    if (c.is_eq) {
      // a*v == -res must have an integer solution.
      if ((-res) % a != 0) return false;
      const i64 val = -res / a;
      if (!has_lo || val > best_lo) best_lo = val, has_lo = true;
      if (!has_hi || val < best_hi) best_hi = val, has_hi = true;
    } else if (a > 0) {
      // v >= ceil(-res / a); C++ division truncates toward zero.
      const i64 num = -res;
      const i64 aa = (a > 0) ? a : -a;
      i64 q = num / aa;
      if (num % aa != 0 && num > 0) ++q;
      if (!has_lo || q > best_lo) best_lo = q, has_lo = true;
    } else {
      // v <= floor(res / -a)
      const i64 na = -a;
      i64 q = res / na;
      if (res % na != 0 && res < 0) --q;
      if (!has_hi || q < best_hi) best_hi = q, has_hi = true;
    }
  }
  if (!has_lo || !has_hi) return false;  // unbounded: caller treats as error
  *lo = best_lo;
  *hi = best_hi;
  return best_lo <= best_hi;
}

}  // namespace

void Set::enumerate(const std::vector<i64>& param_values,
                    const std::function<void(const std::vector<i64>&)>& cb) const {
  require(param_values.size() == params_.size(), "iset", "enumerate: wrong param count");
  DHPF_COUNTER("iset.enumerations");
  std::vector<std::vector<i64>> points;
  for (const auto& part : parts_) {
    // Projection cascade: proj[d] has vars 0..d (vars above projected away).
    std::vector<BasicSet> proj(nvars_, BasicSet(0, params_));
    if (nvars_ == 0) {
      if (part.contains({}, param_values)) points.push_back({});
      continue;
    }
    BasicSet cur = part;
    for (std::size_t d = nvars_; d-- > 0;) {
      proj[d] = cur;
      if (d > 0) cur = cur.project_out(d);
    }
    std::vector<i64> point(nvars_, 0);
    std::function<void(std::size_t)> descend = [&](std::size_t d) {
      i64 lo, hi;
      if (!var_bounds(proj[d], param_values, d, point, &lo, &hi)) return;
      require(hi - lo < 100000000, "iset", "enumerate: variable range too large");
      for (i64 v = lo; v <= hi; ++v) {
        point[d] = v;
        if (d + 1 == nvars_) {
          // Final exactness filter against the original constraints.
          if (part.contains(point, param_values)) points.push_back(point);
        } else {
          descend(d + 1);
        }
      }
    };
    descend(0);
  }
  // Deduplicate across union parts and emit in lexicographic order.
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  for (const auto& pt : points) cb(pt);
}

std::size_t Set::count(const std::vector<i64>& param_values) const {
  std::size_t n = 0;
  enumerate(param_values, [&](const std::vector<i64>&) { ++n; });
  return n;
}

namespace {

/// Points of one BasicSet under concrete params, without materializing them:
/// the same projection-cascade descent enumerate() uses, with the final
/// exactness re-check against the original constraints, but only a counter.
std::size_t count_basic(const BasicSet& part, const std::vector<i64>& params) {
  const std::size_t nvars = part.nvars();
  if (nvars == 0) return part.contains({}, params) ? 1 : 0;
  std::vector<BasicSet> proj(nvars, BasicSet(0, part.params()));
  BasicSet cur = part;
  for (std::size_t d = nvars; d-- > 0;) {
    proj[d] = cur;
    if (d > 0) cur = cur.project_out(d);
  }
  std::size_t total = 0;
  std::vector<i64> point(nvars, 0);
  std::function<void(std::size_t)> descend = [&](std::size_t d) {
    i64 lo, hi;
    if (!var_bounds(proj[d], params, d, point, &lo, &hi)) return;
    require(hi - lo < 100000000, "iset", "cardinality: variable range too large");
    for (i64 v = lo; v <= hi; ++v) {
      point[d] = v;
      if (d + 1 == nvars) {
        if (part.contains(point, params)) ++total;
      } else {
        descend(d + 1);
      }
    }
  };
  descend(0);
  return total;
}

}  // namespace

namespace {

/// A - B as a *pairwise disjoint* list of BasicSets (Set::subtract's pieces
/// may overlap, which is fine for emptiness but fatal for counting): piece i
/// keeps B's constraints c_1..c_{i-1} and violates c_i, so distinct pieces
/// disagree on the first violated constraint. Negating an equality yields
/// the two (themselves disjoint) strict sides.
std::vector<BasicSet> subtract_disjoint(const BasicSet& a, const BasicSet& b) {
  std::vector<BasicSet> pieces;
  BasicSet prefix = a;  // a ∩ c_1 ∩ ... ∩ c_{i-1}
  for (const auto& c : b.constraints()) {
    auto emit = [&](const LinExpr& violated) {
      BasicSet piece = prefix;
      piece.add(Constraint::ge0(violated));
      if (piece.simplify() && !piece.is_empty()) pieces.push_back(std::move(piece));
    };
    // ¬(e >= 0) is -e-1 >= 0; ¬(e == 0) is (-e-1 >= 0) ∪ (e-1 >= 0).
    emit(c.e * -1 - a.expr_const(1) + a.expr_zero());
    if (c.is_eq) emit(c.e - a.expr_const(1) + a.expr_zero());
    prefix.add(c);
    if (!prefix.simplify()) break;  // remaining pieces all empty
  }
  return pieces;
}

}  // namespace

std::size_t Set::cardinality(const std::vector<i64>& param_values) const {
  require(param_values.size() == params_.size(), "iset", "cardinality: wrong param count");
  DHPF_COUNTER("iset.cardinalities");
  DHPF_COUNTER_ADD("iset.op.operand_parts", parts_.size());
  std::uint64_t ks = 0, kp = 0;
  const bool cache = memo::enabled();
  if (cache) {
    ks = rep_id();
    kp = memo::intern_point(param_values);
    if (auto hit = memo::count_lookup(ks, kp)) return *hit;
  }
  // Make the union disjoint: piece lists start from each part with every
  // earlier part subtracted (disjointly), so per-piece counts add up exactly.
  std::size_t total = 0;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    std::vector<BasicSet> pieces{parts_[i]};
    for (std::size_t j = 0; j < i && !pieces.empty(); ++j) {
      std::vector<BasicSet> next;
      for (const auto& piece : pieces)
        for (auto& p : subtract_disjoint(piece, parts_[j])) next.push_back(std::move(p));
      pieces = std::move(next);
    }
    for (const auto& piece : pieces) total += count_basic(piece, param_values);
  }
  if (cache) memo::count_store(ks, kp, total);
  return total;
}

std::optional<std::vector<i64>> Set::sample(const std::vector<i64>& param_values) const {
  std::uint64_t ks = 0, kp = 0;
  const bool cache = memo::enabled();
  if (cache) {
    ks = rep_id();
    kp = memo::intern_point(param_values);
    if (auto hit = memo::sample_lookup(ks, kp)) {
      if (!hit->has) return std::nullopt;
      return hit->point;
    }
  }
  std::optional<std::vector<i64>> first;
  enumerate(param_values, [&](const std::vector<i64>& pt) {
    if (!first) first = pt;
  });
  if (cache) {
    memo::SampleResult r;
    r.has = first.has_value();
    if (first) r.point = *first;
    memo::sample_store(ks, kp, r);
  }
  return first;
}

std::string Set::to_string(const std::vector<std::string>& var_names) const {
  if (parts_.empty()) return "{ }";
  std::ostringstream out;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i) out << " union ";
    out << parts_[i].to_string(var_names);
  }
  return out.str();
}

// ------------------------------------------------------------ AffineMap

AffineMap::AffineMap(std::size_t n_in, std::size_t n_out, Params params)
    : n_in_(n_in), params_(std::move(params)),
      outs_(n_out, LinExpr::zero(n_in, params_.size())) {}

AffineMap AffineMap::identity(std::size_t n, Params params) {
  AffineMap m(n, n, std::move(params));
  for (std::size_t i = 0; i < n; ++i) m.outs_[i].var[i] = 1;
  return m;
}

AffineMap AffineMap::compose(const AffineMap& inner) const {
  require(inner.n_out() == n_in_ && inner.params() == params_, "iset",
          "compose: map mismatch");
  AffineMap r(inner.n_in(), n_out(), params_);
  for (std::size_t o = 0; o < n_out(); ++o) {
    LinExpr e = LinExpr::constant(inner.n_in(), params_.size(), outs_[o].cst);
    for (std::size_t j = 0; j < params_.size(); ++j) e.param[j] += outs_[o].param[j];
    for (std::size_t i = 0; i < n_in_; ++i) e += inner.out(i) * outs_[o].var[i];
    r.outs_[o] = std::move(e);
  }
  return r;
}

std::vector<i64> AffineMap::eval(const std::vector<i64>& in,
                                 const std::vector<i64>& params) const {
  std::vector<i64> out(n_out());
  for (std::size_t o = 0; o < n_out(); ++o) out[o] = outs_[o].eval(in, params);
  return out;
}

}  // namespace dhpf::iset
