#include "lint/mutate.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/dependence.hpp"
#include "analysis/sets.hpp"
#include "hpf/parser.hpp"
#include "hpf/printer.hpp"
#include "support/diagnostics.hpp"

namespace dhpf::lint {

using analysis::IterSpace;
using analysis::iteration_space;
using analysis::subscript_map;
using hpf::Array;
using hpf::Loop;
using hpf::Procedure;
using hpf::Program;
using hpf::Ref;
using hpf::Stmt;
using hpf::StmtPtr;
using hpf::Subscript;
using iset::Params;
using iset::Set;

const char* to_string(Mutation m) {
  switch (m) {
    case Mutation::DropInit: return "drop-init";
    case Mutation::WidenSubscript: return "widen-subscript";
    case Mutation::BreakIndependent: return "break-independent";
    case Mutation::FalseIndependent: return "false-independent";
    case Mutation::Misalign: return "misalign";
    case Mutation::KillStore: return "kill-store";
  }
  return "?";
}

Code MutationSite::expected_code() const {
  switch (kind) {
    case Mutation::DropInit: return Code::UninitRead;
    case Mutation::WidenSubscript: return Code::OutOfBounds;
    case Mutation::BreakIndependent:
    case Mutation::FalseIndependent: return Code::StaticRace;
    case Mutation::Misalign: return Code::AlignConformance;
    case Mutation::KillStore: return Code::DeadStore;
  }
  return Code::StaticRace;
}

Severity MutationSite::expected_severity() const {
  return kind == Mutation::KillStore ? Severity::Warning : Severity::Error;
}

namespace {

// ----------------------------------------------------------- IR utilities

StmtPtr clone_stmt(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  if (s.is_assign()) {
    out->node = s.assign();
  } else if (s.is_call()) {
    out->node = s.call();
  } else {
    const Loop& l = s.loop();
    Loop c;
    c.var = l.var;
    c.lo = l.lo;
    c.hi = l.hi;
    c.independent = l.independent;
    c.new_vars = l.new_vars;
    c.localize_vars = l.localize_vars;
    c.loc = l.loc;
    for (const auto& b : l.body) c.body.push_back(clone_stmt(*b));
    out->node = std::move(c);
  }
  return out;
}

struct LoopAt {
  Loop* loop = nullptr;
  std::vector<const Loop*> path;  // enclosing loops
};

/// All loops of a program in pre-order (across procedures), with paths.
std::vector<LoopAt> all_loops(Program& prog) {
  std::vector<LoopAt> out;
  for (const auto& p : prog.procedures())
    hpf::walk(p->body, [&](Stmt& s, const std::vector<const Loop*>& path) {
      if (s.is_loop()) out.push_back(LoopAt{&s.loop(), path});
    });
  return out;
}

hpf::Assign* find_assign(Program& prog, int id) {
  hpf::Assign* found = nullptr;
  for (const auto& p : prog.procedures())
    hpf::walk(p->body, [&](Stmt& s, const std::vector<const Loop*>&) {
      if (s.is_assign() && s.assign().id == id) found = &s.assign();
    });
  return found;
}

bool subscripts_bound(const IterSpace& is, const Ref& ref) {
  for (const auto& sub : ref.subs)
    for (const auto& [name, c] : sub.coef) {
      if (c == 0) continue;
      bool found = false;
      for (const auto& v : is.var_names) found = found || v == name;
      if (!found) return false;
    }
  return true;
}

/// Element set of a reference under its loop nest; nullopt when the nest or
/// subscripts are malformed.
std::optional<Set> elem_set(const std::vector<const Loop*>& path, const Ref& ref) {
  const Params params;
  try {
    const IterSpace is = iteration_space(path, params);
    if (!subscripts_bound(is, ref)) return std::nullopt;
    return Set(is.bounds).apply(subscript_map(is, ref.subs, params));
  } catch (const dhpf::Error&) {
    return std::nullopt;
  }
}

/// References to `arr` inside one top-level subtree: (path, ref, write).
struct Touch {
  const Ref* ref = nullptr;
  std::vector<const Loop*> path;
  bool write = false;
};

std::vector<Touch> touches(const Stmt& top, const Array* arr) {
  std::vector<Touch> out;
  auto visit = [&](const Stmt& s, std::vector<const Loop*> path) {
    if (!s.is_assign()) return;
    const auto& a = s.assign();
    if (a.lhs.array == arr) out.push_back(Touch{&a.lhs, path, true});
    for (const auto& r : a.rhs)
      if (r.array == arr) out.push_back(Touch{&r, path, false});
  };
  if (top.is_assign()) {
    visit(top, {});
  } else if (top.is_loop()) {
    hpf::walk(top.loop().body, [&](Stmt& s, const std::vector<const Loop*>& rel) {
      std::vector<const Loop*> full{&top.loop()};
      full.insert(full.end(), rel.begin(), rel.end());
      visit(s, std::move(full));
    });
  }
  return out;
}

std::set<const Array*> call_touched(const Procedure& proc) {
  std::set<const Array*> out;
  hpf::walk(proc.body, [&](Stmt& s, const std::vector<const Loop*>&) {
    if (s.is_call())
      for (const auto& a : s.call().args) out.insert(a.array);
  });
  return out;
}

/// The assign BreakIndependent rewires inside loop ordinal `index`: first
/// (pre-order) assign whose lhs uses the loop variable with coefficient 1
/// and whose array is not declared NEW/LOCALIZE on the loop. Returns the
/// dimension used in `*dim`.
hpf::Assign* break_target(const LoopAt& at, int* dim) {
  const Loop& loop = *at.loop;
  std::set<std::string> declared(loop.new_vars.begin(), loop.new_vars.end());
  declared.insert(loop.localize_vars.begin(), loop.localize_vars.end());
  hpf::Assign* found = nullptr;
  hpf::walk(loop.body, [&](Stmt& s, const std::vector<const Loop*>&) {
    if (found || !s.is_assign()) return;
    auto& a = s.assign();
    if (!a.lhs.array || declared.count(a.lhs.array->name)) return;
    for (std::size_t d = 0; d < a.lhs.subs.size(); ++d) {
      const auto it = a.lhs.subs[d].coef.find(loop.var);
      if (it != a.lhs.subs[d].coef.end() && it->second == 1) {
        found = &a;
        *dim = static_cast<int>(d);
        return;
      }
    }
  });
  return found;
}

void apply_break_independent(hpf::Assign& a, int dim) {
  Ref shifted = a.lhs;
  shifted.subs[static_cast<std::size_t>(dim)].cst -= 1;
  a.rhs.clear();
  a.rhs.push_back(std::move(shifted));
}

/// Does `loop` carry a sampleable level-0 dependence on an undeclared
/// array? (The concrete gate for both *Independent mutations.)
bool carries_confirmed_dep(const LoopAt& at) {
  std::vector<analysis::RefDep> deps;
  try {
    deps = analysis::ref_dependences_in_loop(*at.loop, at.path);
  } catch (const dhpf::Error&) {
    return false;
  }
  std::set<std::string> declared(at.loop->new_vars.begin(), at.loop->new_vars.end());
  declared.insert(at.loop->localize_vars.begin(), at.loop->localize_vars.end());
  for (const auto& d : deps) {
    if (d.loop_independent || d.carried_level != 0) continue;
    if (declared.count(d.array->name)) continue;
    if (d.system.sample({})) return true;
  }
  return false;
}

}  // namespace

std::vector<MutationSite> mutation_sites(const std::string& source, Mutation kind) {
  Program prog = hpf::parse(source);
  Procedure* main = prog.main();
  std::vector<MutationSite> sites;
  if (!main) return sites;

  switch (kind) {
    case Mutation::DropInit: {
      // A top-level nest of the main procedure that is the *only* writer of
      // a local array some other nest reads: dropping it must leave an
      // uncovered (non-empty, sampleable) read set.
      const auto called = call_touched(*main);
      for (const auto& arr : prog.arrays()) {
        if (!arr->local_scratch || called.count(arr.get())) continue;
        int writer = -1;
        bool multiple = false, reads_elsewhere = false;
        for (std::size_t i = 0; i < main->body.size(); ++i) {
          bool writes = false;
          for (const auto& t : touches(*main->body[i], arr.get())) {
            if (t.write) writes = true;
          }
          if (writes) {
            multiple = multiple || writer >= 0;
            writer = static_cast<int>(i);
          }
        }
        if (writer < 0 || multiple) continue;
        for (std::size_t i = 0; i < main->body.size(); ++i) {
          if (static_cast<int>(i) == writer) continue;
          for (const auto& t : touches(*main->body[i], arr.get())) {
            if (t.write) continue;
            auto es = elem_set(t.path, *t.ref);
            if (es && es->sample({})) reads_elsewhere = true;
          }
        }
        if (!reads_elsewhere) continue;
        MutationSite s;
        s.kind = kind;
        s.index = writer;
        s.describe = "drop the nest initializing local array '" + arr->name + "'";
        sites.push_back(std::move(s));
      }
      break;
    }

    case Mutation::WidenSubscript: {
      for (const auto& p : prog.procedures())
        hpf::walk(p->body, [&](Stmt& st, const std::vector<const Loop*>& path) {
          if (!st.is_assign()) return;
          const auto& a = st.assign();
          auto consider = [&](const Ref& r, int ref_ord) {
            if (!r.array) return;
            const Params params;
            try {
              const IterSpace is = iteration_space(path, params);
              if (!subscripts_bound(is, r)) return;
              for (std::size_t d = 0; d < r.subs.size(); ++d) {
                // After cst += extent the subscript exceeds the extent for
                // every iteration where it was >= 0; gate on that system
                // having an integer point.
                iset::BasicSet sys = is.bounds;
                sys.add(iset::Constraint::ge0(analysis::subscript_expr(is, r.subs[d], params)));
                if (!Set(sys).sample({})) continue;
                MutationSite s;
                s.kind = kind;
                s.index = a.id;
                s.ref = ref_ord;
                s.dim = static_cast<int>(d);
                s.describe = "widen subscript " + std::to_string(d + 1) + " of " +
                             r.to_string() + " in S" + std::to_string(a.id);
                sites.push_back(std::move(s));
              }
            } catch (const dhpf::Error&) {
            }
          };
          consider(a.lhs, 0);
          for (std::size_t k = 0; k < a.rhs.size(); ++k)
            consider(a.rhs[k], static_cast<int>(k) + 1);
        });
      break;
    }

    case Mutation::BreakIndependent: {
      auto loops = all_loops(prog);
      for (std::size_t i = 0; i < loops.size(); ++i) {
        if (!loops[i].loop->independent) continue;
        int dim = -1;
        hpf::Assign* a = break_target(loops[i], &dim);
        if (!a) continue;
        // Gate by actually rewiring a scratch copy of the assign and
        // checking the loop then carries a confirmed dependence.
        const auto saved = a->rhs;
        apply_break_independent(*a, dim);
        const bool detectable = carries_confirmed_dep(loops[i]);
        a->rhs = saved;
        if (!detectable) continue;
        MutationSite s;
        s.kind = kind;
        s.index = static_cast<int>(i);
        s.dim = dim;
        s.describe = "read " + a->lhs.array->name + "(" + loops[i].loop->var +
                     "-1) inside INDEPENDENT loop '" + loops[i].loop->var + "'";
        sites.push_back(std::move(s));
      }
      break;
    }

    case Mutation::FalseIndependent: {
      auto loops = all_loops(prog);
      for (std::size_t i = 0; i < loops.size(); ++i) {
        if (loops[i].loop->independent) continue;
        if (!carries_confirmed_dep(loops[i])) continue;
        MutationSite s;
        s.kind = kind;
        s.index = static_cast<int>(i);
        s.describe = "mark loop '" + loops[i].loop->var +
                     "' INDEPENDENT despite its carried dependence";
        sites.push_back(std::move(s));
      }
      break;
    }

    case Mutation::Misalign: {
      // Grid dim -> arrays BLOCK-distributed on it with implied extents.
      std::map<int, std::vector<std::pair<const Array*, int>>> by_dim;
      const auto& arrays = prog.arrays();
      for (const auto& a : arrays)
        if (a->dist.grid)
          for (std::size_t d = 0; d < a->dist.dims.size() && d < a->extents.size(); ++d)
            if (a->dist.dims[d].kind == hpf::DistKind::Block)
              by_dim[a->dist.dims[d].proc_dim].emplace_back(
                  a.get(), a->extents[d] + a->dist.offset(d));
      for (std::size_t i = 0; i < arrays.size(); ++i) {
        const Array* a = arrays[i].get();
        if (!a->dist.grid) continue;
        for (std::size_t d = 0; d < a->dist.dims.size() && d < a->extents.size(); ++d) {
          if (a->dist.dims[d].kind != hpf::DistKind::Block) continue;
          const auto& peers = by_dim[a->dist.dims[d].proc_dim];
          // Mismatch is guaranteed only when the dim currently conforms and
          // someone else shares it.
          bool conforms = peers.size() >= 2;
          for (const auto& [peer, e] : peers)
            conforms = conforms && e == a->extents[d] + a->dist.offset(d);
          if (!conforms) continue;
          MutationSite s;
          s.kind = kind;
          s.index = static_cast<int>(i);
          s.dim = static_cast<int>(d);
          s.describe = "bump alignment offset of '" + a->name + "' dim " +
                       std::to_string(d + 1);
          sites.push_back(std::move(s));
        }
      }
      break;
    }

    case Mutation::KillStore: {
      const auto called = call_touched(*main);
      for (std::size_t i = 0; i < main->body.size(); ++i) {
        // A pure store nest: every assign writes the same array, which it
        // never reads; duplicating the nest right after itself kills the
        // first copy's stores before any read.
        const Array* target = nullptr;
        bool pure = true, any = false;
        auto visit = [&](const Stmt& s) {
          if (s.is_call()) pure = false;
          if (!s.is_assign()) return;
          const auto& a = s.assign();
          any = true;
          if (!target) target = a.lhs.array;
          if (a.lhs.array != target) pure = false;
          for (const auto& r : a.rhs) pure = pure && r.array != target;
        };
        const Stmt& top = *main->body[i];
        if (top.is_loop()) {
          hpf::walk(top.loop().body,
                    [&](Stmt& s, const std::vector<const Loop*>&) { visit(s); });
        } else {
          visit(top);
        }
        if (!any || !pure || !target || called.count(target)) continue;
        const auto ts = touches(top, target);
        bool sampleable = false;
        for (const auto& t : ts)
          if (t.write) {
            auto es = elem_set(t.path, *t.ref);
            sampleable = sampleable || (es && es->sample({}));
          }
        if (!sampleable) continue;
        MutationSite s;
        s.kind = kind;
        s.index = static_cast<int>(i);
        s.describe = "duplicate the store nest over '" + target->name +
                     "' so the first copy is dead";
        sites.push_back(std::move(s));
      }
      break;
    }
  }
  return sites;
}

std::vector<MutationSite> all_mutation_sites(const std::string& source) {
  static constexpr Mutation kAll[] = {
      Mutation::DropInit,         Mutation::WidenSubscript, Mutation::BreakIndependent,
      Mutation::FalseIndependent, Mutation::Misalign,       Mutation::KillStore,
  };
  std::vector<MutationSite> out;
  for (Mutation m : kAll) {
    auto sites = mutation_sites(source, m);
    out.insert(out.end(), sites.begin(), sites.end());
  }
  return out;
}

std::string mutate_source(const std::string& source, const MutationSite& site) {
  Program prog = hpf::parse(source);
  Procedure* main = prog.main();
  require(main != nullptr, "lint-mutate", "program has no procedure");

  switch (site.kind) {
    case Mutation::DropInit:
    case Mutation::KillStore: {
      require(site.index >= 0 && static_cast<std::size_t>(site.index) < main->body.size(),
              "lint-mutate", "no such body position: " + std::to_string(site.index));
      if (site.kind == Mutation::DropInit) {
        main->body.erase(main->body.begin() + site.index);
      } else {
        StmtPtr copy = clone_stmt(*main->body[static_cast<std::size_t>(site.index)]);
        main->body.insert(main->body.begin() + site.index + 1, std::move(copy));
      }
      break;
    }
    case Mutation::WidenSubscript: {
      hpf::Assign* a = find_assign(prog, site.index);
      require(a != nullptr, "lint-mutate", "no assign with id " + std::to_string(site.index));
      Ref* r = site.ref == 0 ? &a->lhs : &a->rhs.at(static_cast<std::size_t>(site.ref - 1));
      require(site.dim >= 0 && static_cast<std::size_t>(site.dim) < r->subs.size(),
              "lint-mutate", "no such subscript dimension");
      r->subs[static_cast<std::size_t>(site.dim)].cst +=
          r->array->extents[static_cast<std::size_t>(site.dim)];
      break;
    }
    case Mutation::BreakIndependent: {
      auto loops = all_loops(prog);
      require(site.index >= 0 && static_cast<std::size_t>(site.index) < loops.size(),
              "lint-mutate", "no such loop ordinal");
      int dim = -1;
      hpf::Assign* a = break_target(loops[static_cast<std::size_t>(site.index)], &dim);
      require(a != nullptr, "lint-mutate", "loop has no rewirable assignment");
      apply_break_independent(*a, dim);
      break;
    }
    case Mutation::FalseIndependent: {
      auto loops = all_loops(prog);
      require(site.index >= 0 && static_cast<std::size_t>(site.index) < loops.size(),
              "lint-mutate", "no such loop ordinal");
      loops[static_cast<std::size_t>(site.index)].loop->independent = true;
      break;
    }
    case Mutation::Misalign: {
      const auto& arrays = prog.arrays();
      require(site.index >= 0 && static_cast<std::size_t>(site.index) < arrays.size(),
              "lint-mutate", "no such array ordinal");
      Array* a = arrays[static_cast<std::size_t>(site.index)].get();
      require(site.dim >= 0 && static_cast<std::size_t>(site.dim) < a->extents.size(),
              "lint-mutate", "no such array dimension");
      auto& off = a->dist.template_offset;
      if (off.size() < a->extents.size()) off.resize(a->extents.size(), 0);
      off[static_cast<std::size_t>(site.dim)] += 1;
      break;
    }
  }
  prog.number_statements();
  return hpf::to_source(prog);
}

std::string augment_with_scratch(const std::string& source, std::uint64_t seed) {
  Program prog = hpf::parse(source);
  Procedure* main = prog.main();
  require(main != nullptr, "lint-mutate", "program has no procedure");

  // A victim array the use nest stores into (any non-local array).
  const Array* victim = nullptr;
  for (const auto& a : prog.arrays())
    if (!a->local_scratch && !a->extents.empty()) {
      victim = a.get();
      break;
    }
  require(victim != nullptr, "lint-mutate", "program has no array to augment against");

  std::string name = "zz";
  while (prog.find_array(name)) name += "z";
  const int extent = std::min(8, victim->extents[0]);
  Array* scratch = prog.add_array(name, {extent});
  scratch->local_scratch = true;

  const std::string iv = "q__";  // cannot collide: parser idents are [a-z0-9_]*
                                 // but the generator never emits this name
  auto scratch_ref = [&](long shift) {
    Ref r;
    r.array = scratch;
    r.subs.push_back(Subscript::var(iv, 1, shift));
    return r;
  };
  Ref victim_ref;
  victim_ref.array = victim;
  victim_ref.subs.push_back(Subscript::var(iv));
  for (std::size_t d = 1; d < victim->extents.size(); ++d)
    victim_ref.subs.push_back(Subscript::constant(0));

  // init: do q__ = 0, extent-1 { zz(q__) = <c> }
  std::vector<StmtPtr> init_body;
  init_body.push_back(
      hpf::make_assign(scratch_ref(0), {}, static_cast<double>(1 + seed % 5)));
  main->body.push_back(hpf::make_loop(iv, Subscript::constant(0),
                                      Subscript::constant(extent - 1), std::move(init_body)));
  // use: do q__ = 0, extent-1 { victim(q__, 0...) = zz(q__) }
  std::vector<StmtPtr> use_body;
  use_body.push_back(hpf::make_assign(victim_ref, {scratch_ref(0)}, 0.0));
  main->body.push_back(hpf::make_loop(iv, Subscript::constant(0),
                                      Subscript::constant(extent - 1), std::move(use_body)));
  prog.number_statements();
  return hpf::to_source(prog);
}

HarnessResult run_harness(const std::string& source, const LintOptions& opt) {
  HarnessResult res;
  for (const auto& site : all_mutation_sites(source)) {
    ++res.seeded;
    const std::string mutated = mutate_source(source, site);
    const Report rep = run_source(mutated, opt);
    const bool caught = rep.has(site.expected_code(), site.expected_severity());
    res.caught += caught;
    std::ostringstream line;
    line << (caught ? "caught " : "ESCAPED ") << to_string(site.kind) << ": " << site.describe
         << " -> expected " << code_id(site.expected_code());
    res.lines.push_back(line.str());
  }
  return res;
}

}  // namespace dhpf::lint
