#include "lint/diag.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "support/json.hpp"

namespace dhpf::lint {

const char* code_id(Code c) {
  switch (c) {
    case Code::StaticRace: return "DHPF-L001";
    case Code::UninitRead: return "DHPF-L002";
    case Code::OutOfBounds: return "DHPF-L003";
    case Code::DeadStore: return "DHPF-L004";
    case Code::AlignConformance: return "DHPF-L005";
    case Code::EmptyBlock: return "DHPF-L006";
    case Code::NonPrivatizable: return "DHPF-L007";
  }
  return "DHPF-L???";
}

const char* code_name(Code c) {
  switch (c) {
    case Code::StaticRace: return "static-race";
    case Code::UninitRead: return "uninit-read";
    case Code::OutOfBounds: return "out-of-bounds";
    case Code::DeadStore: return "dead-store";
    case Code::AlignConformance: return "align-conformance";
    case Code::EmptyBlock: return "empty-block";
    case Code::NonPrivatizable: return "non-privatizable";
  }
  return "?";
}

const char* to_string(Severity s) { return s == Severity::Error ? "error" : "warning"; }

namespace {

void print_tuple(std::ostringstream& out, const std::vector<iset::i64>& xs) {
  out << "(";
  for (std::size_t i = 0; i < xs.size(); ++i) out << (i ? "," : "") << xs[i];
  out << ")";
}

void print_names(std::ostringstream& out, const std::vector<std::string>& xs) {
  out << "(";
  for (std::size_t i = 0; i < xs.size(); ++i) out << (i ? "," : "") << xs[i];
  out << ")";
}

}  // namespace

std::string Witness::to_string() const {
  std::ostringstream out;
  bool first = true;
  if (has_iter) {
    if (!iter_names.empty()) {
      print_names(out, iter_names);
      out << "=";
    } else {
      out << "iteration ";
    }
    print_tuple(out, iter);
    if (has_iter2) {
      out << " and ";
      print_tuple(out, iter2);
    }
    first = false;
  }
  if (has_element) {
    if (!first) out << " at ";
    out << "element ";
    print_tuple(out, element);
  }
  return out.str();
}

std::string Diagnostic::to_string() const {
  std::ostringstream out;
  out << loc.to_string() << ": " << lint::to_string(severity) << ": " << code_id(code) << " ["
      << code_name(code) << "]: " << message;
  const std::string w = witness.to_string();
  if (!w.empty()) out << " [" << w << "]";
  return out.str();
}

std::size_t Report::errors() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) n += d.severity == Severity::Error;
  return n;
}

std::size_t Report::warnings() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) n += d.severity == Severity::Warning;
  return n;
}

std::vector<const Diagnostic*> Report::by_code(Code c) const {
  std::vector<const Diagnostic*> out;
  for (const auto& d : diagnostics)
    if (d.code == c) out.push_back(&d);
  return out;
}

bool Report::has(Code c, Severity s) const {
  for (const auto& d : diagnostics)
    if (d.code == c && d.severity == s) return true;
  return false;
}

void Report::sort() {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tuple(a.loc.line, a.loc.col, static_cast<int>(a.code),
                                       a.message) < std::tuple(b.loc.line, b.loc.col,
                                                               static_cast<int>(b.code),
                                                               b.message);
                   });
}

std::string Report::to_string() const {
  std::ostringstream out;
  for (const auto& d : diagnostics) {
    out << d.to_string() << "\n";
    if (!d.snippet.empty()) out << d.snippet << "\n";
  }
  out << errors() << " error(s), " << warnings() << " warning(s), " << checks_run
      << " check(s) run\n";
  return out.str();
}

std::string Report::to_json() const {
  json::Writer w(/*pretty=*/true);
  w.begin_object();
  w.member("errors", static_cast<std::uint64_t>(errors()));
  w.member("warnings", static_cast<std::uint64_t>(warnings()));
  w.member("checks_run", static_cast<std::uint64_t>(checks_run));
  w.key("diagnostics");
  w.begin_array();
  for (const auto& d : diagnostics) {
    w.begin_object();
    w.member("code", code_id(d.code));
    w.member("name", code_name(d.code));
    w.member("severity", lint::to_string(d.severity));
    w.member("line", d.loc.line);
    w.member("col", d.loc.col);
    w.member("message", d.message);
    if (!d.array.empty()) w.member("array", d.array);
    if (!d.witness.empty()) {
      w.key("witness");
      w.begin_object();
      if (d.witness.has_iter) {
        if (!d.witness.iter_names.empty()) {
          w.key("iter_names");
          w.begin_array();
          for (const auto& n : d.witness.iter_names) w.value(n);
          w.end_array();
        }
        w.key("iteration");
        w.begin_array();
        for (auto v : d.witness.iter) w.value(static_cast<std::int64_t>(v));
        w.end_array();
      }
      if (d.witness.has_iter2) {
        w.key("iteration2");
        w.begin_array();
        for (auto v : d.witness.iter2) w.value(static_cast<std::int64_t>(v));
        w.end_array();
      }
      if (d.witness.has_element) {
        w.key("element");
        w.begin_array();
        for (auto v : d.witness.element) w.value(static_cast<std::int64_t>(v));
        w.end_array();
      }
      w.end_object();
    }
    if (!d.snippet.empty()) w.member("snippet", d.snippet);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string caret_snippet(const std::string& source, hpf::SrcLoc loc) {
  if (!loc.valid()) return {};
  int line = 1;
  std::size_t start = 0;
  while (line < loc.line) {
    const std::size_t nl = source.find('\n', start);
    if (nl == std::string::npos) return {};
    start = nl + 1;
    ++line;
  }
  std::size_t end = source.find('\n', start);
  if (end == std::string::npos) end = source.size();
  const std::string text = source.substr(start, end - start);
  if (static_cast<std::size_t>(loc.col) > text.size() + 1) return {};
  std::string out = "  " + text + "\n  ";
  for (int i = 1; i < loc.col; ++i)
    out += (text[static_cast<std::size_t>(i - 1)] == '\t') ? '\t' : ' ';
  out += "^";
  return out;
}

void add_snippets(Report& report, const std::string& source) {
  for (auto& d : report.diagnostics)
    if (d.snippet.empty()) d.snippet = caret_snippet(source, d.loc);
}

}  // namespace dhpf::lint
