// Source-level fault injection for the linter, mirroring verify/mutate.hpp:
// seeded defects over an HPF-lite *source text*, one mutation per defect
// class the checks must catch.
//
// Each mutator parses a fresh copy of the source, edits the IR, and prints
// it back with hpf::to_source — so the defect travels the same
// parse → lint path a user's program would, source locations included.
// The lint tests (and `dhpfc --lint-selftest`) enumerate every applicable
// mutation and assert that lint::run_source reports a finding of the
// expected code with a source-located witness; this is what makes "a clean
// lint is trustworthy" an empirical claim and not just a design intention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/diag.hpp"
#include "lint/lint.hpp"

namespace dhpf::lint {

/// The seeded defect classes.
enum class Mutation {
  DropInit,          ///< delete the nest initializing a local array → UninitRead
  WidenSubscript,    ///< shift a subscript past the extent → OutOfBounds
  BreakIndependent,  ///< read lhs(i-1) inside an INDEPENDENT loop → StaticRace
  FalseIndependent,  ///< mark a loop with a carried dep INDEPENDENT → StaticRace
  Misalign,          ///< bump one array's alignment offset → AlignConformance
  KillStore,         ///< duplicate a pure store nest so the first is dead → DeadStore
};

const char* to_string(Mutation m);

/// One applicable mutation site in a program. Sites are identified by
/// stable ordinals (statement ids, pre-order loop ordinals, array/body
/// positions), so they survive a re-parse of the same source.
struct MutationSite {
  Mutation kind = Mutation::DropInit;
  int index = -1;  ///< stmt id / loop ordinal / array ordinal / body position
  int dim = -1;    ///< array dimension (WidenSubscript, Misalign)
  int ref = -1;    ///< reference ordinal in a statement: 0 = lhs, k = rhs[k-1]
  std::string describe;

  [[nodiscard]] Code expected_code() const;
  [[nodiscard]] Severity expected_severity() const;
};

/// Enumerate every applicable site of `kind` (empty when the program has no
/// artifact the mutation could break — e.g. no local array to drop an init
/// of). Sites are gated concretely: a site is listed only when applying it
/// is guaranteed to produce a detectable defect (non-empty, sampleable
/// violation system), so the 100%-detection harness claim is falsifiable.
std::vector<MutationSite> mutation_sites(const std::string& source, Mutation kind);

/// All applicable sites of all mutation kinds.
std::vector<MutationSite> all_mutation_sites(const std::string& source);

/// Apply one mutation: parse a fresh copy, edit the IR, print back to
/// source. Throws dhpf::Error if the site does not exist in this source.
std::string mutate_source(const std::string& source, const MutationSite& site);

/// Append a `local` scratch array with an init nest and a use nest to a
/// program (used by the fuzz campaign to give generated programs a
/// DropInit surface without perturbing the generator's RNG stream). The
/// result parses, lints clean of new error findings, and exposes DropInit
/// and KillStore sites. `seed` varies extent and init order.
std::string augment_with_scratch(const std::string& source, std::uint64_t seed);

/// Run the whole harness over one source: apply every applicable mutation
/// and check each one is caught (a finding of the expected code at the
/// expected severity). Returns human-readable one-line results;
/// `all_caught` is false if any seeded defect escaped.
struct HarnessResult {
  std::vector<std::string> lines;
  std::size_t seeded = 0;
  std::size_t caught = 0;

  [[nodiscard]] bool all_caught() const { return caught == seeded; }
};
HarnessResult run_harness(const std::string& source, const LintOptions& opt = {});

}  // namespace dhpf::lint
