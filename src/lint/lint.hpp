// dhpf::lint — source-level static analysis over the HPF-lite IR.
//
// The verifier (dhpf::verify) proves properties of the *compiled plan*;
// this pass analyzes the *input program*, before any compilation, with the
// same integer-set machinery (dhpf::iset via analysis/sets.hpp and
// analysis/dependence.hpp). Seven checks:
//
//   DHPF-L001 static-race        — a loop marked INDEPENDENT has a
//                                  dependence carried by that loop on an
//                                  array not declared NEW/LOCALIZE; the
//                                  witness is a concrete pair of iteration
//                                  vectors touching the same element.
//   DHPF-L002 uninit-read        — an element of a `local` (scratch) array
//                                  is read before any statement writes it.
//   DHPF-L003 out-of-bounds      — a subscript provably escapes the
//                                  declared extent for some in-bounds
//                                  iteration (exact, per dimension).
//   DHPF-L004 dead-store         — a top-level nest's stores to an array
//                                  are completely overwritten before any
//                                  read (warning).
//   DHPF-L005 align-conformance  — two arrays BLOCK-distributed on the
//                                  same grid dimension imply different
//                                  template extents (extent + offset).
//   DHPF-L006 empty-block        — a BLOCK distribution assigns some ranks
//                                  an empty block (warning).
//   DHPF-L007 non-privatizable   — NEW/LOCALIZE names an unknown array, or
//                                  a NEW array reads an element its
//                                  iteration did not first write.
//
// Soundness direction (same contract as dhpf::verify): error-severity
// findings carry a concrete witness extracted with exact Set::sample, so
// they are true positives; a symbolically non-empty system that cannot be
// sampled is reported as a warning. A clean run over a valid program is an
// empirical claim, tested by linting every fuzz-generated program
// (tests/lint_fuzz_test.cpp) and every seeded defect (lint/mutate.hpp).
#pragma once

#include <string>

#include "hpf/ir.hpp"
#include "lint/diag.hpp"

namespace dhpf::lint {

struct LintOptions {
  bool check_race = true;          ///< DHPF-L001
  bool check_uninit = true;        ///< DHPF-L002
  bool check_bounds = true;        ///< DHPF-L003
  bool check_dead_store = true;    ///< DHPF-L004
  bool check_distribution = true;  ///< DHPF-L005, DHPF-L006
  bool check_privatizable = true;  ///< DHPF-L007
};

/// Run all enabled checks over a parsed program. Diagnostics come back in
/// canonical order; snippets are empty (the caller has the source text —
/// see run_source / add_snippets).
Report run(const hpf::Program& prog, const LintOptions& opt = {});

/// Parse + run + fill caret snippets. Throws dhpf::Error on a parse error
/// (a program that does not parse has no lint report).
Report run_source(const std::string& source, const LintOptions& opt = {});

}  // namespace dhpf::lint
