#include "lint/lint.hpp"

#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/dependence.hpp"
#include "analysis/sets.hpp"
#include "hpf/parser.hpp"
#include "support/diagnostics.hpp"
#include "support/metrics.hpp"

namespace dhpf::lint {

using analysis::IterSpace;
using analysis::iteration_space;
using analysis::subscript_expr;
using analysis::subscript_map;
using hpf::Loop;
using hpf::Ref;
using hpf::Stmt;
using hpf::StmtPtr;
using iset::BasicSet;
using iset::Constraint;
using iset::i64;
using iset::LinExpr;
using iset::Params;
using iset::Set;

namespace {

/// One array reference with the loop nest enclosing it (outermost first).
struct RefUse {
  const Ref* ref = nullptr;
  std::vector<const Loop*> path;
  bool write = false;
};

/// All assignment references lexically inside one statement subtree.
/// `base` is prepended to every path (loops enclosing `top`).
void collect_refs(const Stmt& top, const std::vector<const Loop*>& base,
                  std::vector<RefUse>& out) {
  if (top.is_assign()) {
    const auto& a = top.assign();
    out.push_back(RefUse{&a.lhs, base, true});
    for (const auto& r : a.rhs) out.push_back(RefUse{&r, base, false});
    return;
  }
  if (!top.is_loop()) return;
  std::vector<const Loop*> inner = base;
  inner.push_back(&top.loop());
  hpf::walk(top.loop().body, [&](Stmt& s, const std::vector<const Loop*>& rel) {
    if (!s.is_assign()) return;
    std::vector<const Loop*> full = inner;
    full.insert(full.end(), rel.begin(), rel.end());
    const auto& a = s.assign();
    out.push_back(RefUse{&a.lhs, full, true});
    for (const auto& r : a.rhs) out.push_back(RefUse{&r, full, false});
  });
}

/// Every subscript variable of `ref` bound by the enclosing loops?
bool subscripts_bound(const IterSpace& is, const Ref& ref) {
  for (const auto& sub : ref.subs)
    for (const auto& [name, c] : sub.coef) {
      if (c == 0) continue;
      bool found = false;
      for (const auto& v : is.var_names) found = found || v == name;
      if (!found) return false;
    }
  return true;
}

/// Element set of a reference: image of its iteration space under the
/// subscript map (exact).
Set elem_set(const RefUse& u, const Params& params) {
  const IterSpace is = iteration_space(u.path, params);
  return Set(is.bounds).apply(subscript_map(is, u.ref->subs, params));
}

std::map<std::string, long> env_of(const std::vector<std::string>& names,
                                   const std::vector<i64>& vals) {
  std::map<std::string, long> env;
  for (std::size_t i = 0; i < names.size() && i < vals.size(); ++i)
    env[names[i]] = static_cast<long>(vals[i]);
  return env;
}

// ------------------------------------------------------- DHPF-L001 races

void check_races(const hpf::Procedure& proc, Report& rep) {
  hpf::walk(proc.body, [&](Stmt& s, const std::vector<const Loop*>& path) {
    if (!s.is_loop() || !s.loop().independent) return;
    const Loop& loop = s.loop();
    ++rep.checks_run;
    std::vector<analysis::RefDep> deps;
    try {
      deps = analysis::ref_dependences_in_loop(loop, path);
    } catch (const dhpf::Error&) {
      return;  // malformed nest; the compiler proper reports it
    }
    std::set<std::string> declared(loop.new_vars.begin(), loop.new_vars.end());
    declared.insert(loop.localize_vars.begin(), loop.localize_vars.end());
    // One finding per unordered reference pair per array.
    std::set<std::tuple<const Ref*, const Ref*, const hpf::Array*>> seen;
    for (const auto& d : deps) {
      if (d.loop_independent || d.carried_level != 0) continue;
      if (declared.count(d.array->name)) continue;
      const Ref* lo = d.src_ref < d.dst_ref ? d.src_ref : d.dst_ref;
      const Ref* hi = d.src_ref < d.dst_ref ? d.dst_ref : d.src_ref;
      if (!seen.insert({lo, hi, d.array}).second) continue;
      DHPF_COUNTER("lint.race_candidates");
      Diagnostic diag;
      diag.code = Code::StaticRace;
      diag.loc = loop.loc;
      diag.array = d.array->name;
      std::ostringstream msg;
      msg << "loop '" << loop.var << "' is marked INDEPENDENT but carries a "
          << analysis::to_string(d.kind) << " dependence on '" << d.array->name << "' between "
          << d.src_ref->to_string() << " (" << d.src_ref->loc.to_string() << ") and "
          << d.dst_ref->to_string() << " (" << d.dst_ref->loc.to_string() << ")";
      const auto pt = d.system.sample({});
      if (pt) {
        const std::size_t na = d.src_vars.size();
        diag.severity = Severity::Error;
        diag.witness.iter_names = d.src_vars;
        diag.witness.iter.assign(pt->begin(), pt->begin() + static_cast<long>(na));
        diag.witness.iter2.assign(pt->begin() + static_cast<long>(na), pt->end());
        diag.witness.has_iter = diag.witness.has_iter2 = true;
        const auto env = env_of(d.src_vars, diag.witness.iter);
        for (const auto& sub : d.src_ref->subs) diag.witness.element.push_back(sub.eval(env));
        diag.witness.has_element = true;
      } else {
        diag.severity = Severity::Warning;
        msg << " (dependence system non-empty rationally; no integer witness found)";
      }
      diag.message = msg.str();
      rep.diagnostics.push_back(std::move(diag));
    }
  });
}

// ----------------------------------------------- DHPF-L002 uninit reads

void check_uninit_reads(const hpf::Program& prog, const hpf::Procedure& proc, Report& rep) {
  const Params params;
  std::set<const hpf::Array*> called;  // arrays passed to calls: unknown writes
  hpf::walk(proc.body, [&](Stmt& s, const std::vector<const Loop*>&) {
    if (s.is_call())
      for (const auto& a : s.call().args) called.insert(a.array);
  });
  for (const auto& arr : prog.arrays()) {
    if (!arr->local_scratch || called.count(arr.get())) continue;
    ++rep.checks_run;
    const std::size_t rank = arr->extents.size();
    Set written = Set::empty(rank, params);
    bool gave_up = false;
    for (const auto& sp : proc.body) {
      if (gave_up) break;
      std::vector<RefUse> uses;
      collect_refs(*sp, {}, uses);
      // Temporal collapse within one top-level subtree: assume every write
      // in the subtree may precede every read in it. Unsound toward missed
      // reports, never toward false positives (lint.hpp header).
      Set subtree_writes = Set::empty(rank, params);
      std::vector<std::pair<const Ref*, Set>> reads;
      try {
        for (const auto& u : uses) {
          if (u.ref->array != arr.get()) continue;
          const IterSpace is = iteration_space(u.path, params);
          if (!subscripts_bound(is, *u.ref)) throw dhpf::Error("lint", "unbound subscript");
          Set es = elem_set(u, params);
          if (u.write)
            subtree_writes = subtree_writes.unite(es);
          else
            reads.emplace_back(u.ref, std::move(es));
        }
      } catch (const dhpf::Error&) {
        gave_up = true;  // malformed subtree; stay silent for this array
        break;
      }
      const Set covered = written.unite(subtree_writes);
      for (const auto& [ref, es] : reads) {
        const Set uninit = es.subtract(covered);
        if (uninit.is_empty()) continue;
        DHPF_COUNTER("lint.uninit_candidates");
        Diagnostic diag;
        diag.code = Code::UninitRead;
        diag.loc = ref->loc;
        diag.array = arr->name;
        std::ostringstream msg;
        msg << "read of local array '" << arr->name << "' at " << ref->to_string()
            << " before any statement writes it";
        const auto pt = uninit.sample({});
        if (pt) {
          diag.severity = Severity::Error;
          diag.witness.element = *pt;
          diag.witness.has_element = true;
        } else {
          diag.severity = Severity::Warning;
          msg << " (uncovered read set non-empty rationally; no integer witness found)";
        }
        diag.message = msg.str();
        rep.diagnostics.push_back(std::move(diag));
      }
      written = covered;
    }
  }
}

// ------------------------------------------------ DHPF-L003 out of bounds

void check_bounds(const hpf::Procedure& proc, Report& rep) {
  const Params params;
  auto check_ref = [&](const Ref& ref, const std::vector<const Loop*>& path) {
    if (!ref.array) return;
    std::optional<IterSpace> iso;
    try {
      iso.emplace(iteration_space(path, params));
    } catch (const dhpf::Error&) {
      return;
    }
    const IterSpace& is = *iso;
    if (!subscripts_bound(is, ref)) return;
    for (std::size_t d = 0; d < ref.subs.size() && d < ref.array->extents.size(); ++d) {
      ++rep.checks_run;
      const LinExpr e = subscript_expr(is, ref.subs[d], params);
      const int ext = ref.array->extents[d];
      // Two one-sided systems: sub <= -1 and sub >= extent, intersected
      // with the iteration bounds.
      for (int side = 0; side < 2; ++side) {
        BasicSet bad = is.bounds;
        if (side == 0)
          bad.add(Constraint::ge0(bad.expr_const(-1) - e));
        else
          bad.add(Constraint::ge0(e - bad.expr_const(ext)));
        if (bad.is_empty()) continue;
        DHPF_COUNTER("lint.bounds_candidates");
        Diagnostic diag;
        diag.code = Code::OutOfBounds;
        diag.loc = ref.loc;
        diag.array = ref.array->name;
        std::ostringstream msg;
        msg << "subscript " << d + 1 << " of " << ref.to_string() << " is out of bounds "
            << (side == 0 ? "(below 0)" : "(at or above the extent)") << " for array '"
            << ref.array->name << "' of extent " << ext;
        const auto pt = Set(bad).sample({});
        if (pt) {
          diag.severity = Severity::Error;
          diag.witness.iter_names = is.var_names;
          diag.witness.iter = *pt;
          diag.witness.has_iter = !pt->empty();
          const auto env = env_of(is.var_names, *pt);
          for (const auto& sub : ref.subs) diag.witness.element.push_back(sub.eval(env));
          diag.witness.has_element = true;
        } else {
          diag.severity = Severity::Warning;
          msg << " (bounds system non-empty rationally; no integer witness found)";
        }
        diag.message = msg.str();
        rep.diagnostics.push_back(std::move(diag));
      }
    }
  };
  hpf::walk(proc.body, [&](Stmt& s, const std::vector<const Loop*>& path) {
    if (s.is_assign()) {
      check_ref(s.assign().lhs, path);
      for (const auto& r : s.assign().rhs) check_ref(r, path);
    } else if (s.is_call()) {
      for (const auto& r : s.call().args) check_ref(r, path);
    }
  });
}

// -------------------------------------------------- DHPF-L004 dead stores

void check_dead_stores(const hpf::Program& prog, const hpf::Procedure& proc, Report& rep) {
  const Params params;
  std::set<const hpf::Array*> called;
  hpf::walk(proc.body, [&](Stmt& s, const std::vector<const Loop*>&) {
    if (s.is_call())
      for (const auto& a : s.call().args) called.insert(a.array);
  });
  // Per-subtree read/write element sets per array (kill granularity is the
  // top-level statement subtree).
  struct SubtreeSets {
    std::map<const hpf::Array*, Set> reads, writes;
    std::map<const hpf::Array*, const Ref*> first_write;
    bool ok = true;
  };
  std::vector<SubtreeSets> subs;
  for (const auto& sp : proc.body) {
    SubtreeSets ss;
    std::vector<RefUse> uses;
    collect_refs(*sp, {}, uses);
    try {
      for (const auto& u : uses) {
        const hpf::Array* a = u.ref->array;
        const IterSpace is = iteration_space(u.path, params);
        if (!subscripts_bound(is, *u.ref)) throw dhpf::Error("lint", "unbound subscript");
        Set es = elem_set(u, params);
        auto& slot = (u.write ? ss.writes : ss.reads);
        auto it = slot.find(a);
        if (it == slot.end())
          slot.emplace(a, std::move(es));
        else
          it->second = it->second.unite(es);
        if (u.write && !ss.first_write.count(a)) ss.first_write[a] = u.ref;
      }
    } catch (const dhpf::Error&) {
      ss.ok = false;
    }
    subs.push_back(std::move(ss));
  }
  for (const auto& arr : prog.arrays()) {
    if (called.count(arr.get())) continue;
    for (std::size_t i = 0; i < subs.size(); ++i) {
      if (!subs[i].ok) break;  // order matters; stop at the first bad subtree
      auto wi = subs[i].writes.find(arr.get());
      if (wi == subs[i].writes.end()) continue;
      if (subs[i].reads.count(arr.get())) continue;  // reads its own stores
      ++rep.checks_run;
      Set remaining = wi->second;
      bool live = false, killed = false;
      for (std::size_t j = i + 1; j < subs.size() && !live && !killed; ++j) {
        if (!subs[j].ok) {
          live = true;  // unknown accesses downstream: assume live
          break;
        }
        auto rj = subs[j].reads.find(arr.get());
        if (rj != subs[j].reads.end() && !rj->second.intersect(remaining).is_empty()) {
          live = true;
          break;
        }
        auto wj = subs[j].writes.find(arr.get());
        if (wj != subs[j].writes.end()) {
          remaining = remaining.subtract(wj->second);
          killed = remaining.is_empty();
        }
      }
      // A non-local array is live-out, so only a full overwrite kills it; a
      // local array's unread stores are dead by declaration.
      const bool dead = killed || (!live && arr->local_scratch);
      if (!dead) continue;
      DHPF_COUNTER("lint.dead_stores");
      Diagnostic diag;
      diag.code = Code::DeadStore;
      diag.severity = Severity::Warning;
      diag.loc = subs[i].first_write.at(arr.get())->loc;
      diag.array = arr->name;
      std::ostringstream msg;
      msg << "stores to '" << arr->name << "' are "
          << (killed ? "completely overwritten before any read"
                     : "never read (and the array is declared local)");
      diag.message = msg.str();
      const auto pt = wi->second.sample({});
      if (pt) {
        diag.witness.element = *pt;
        diag.witness.has_element = true;
      }
      rep.diagnostics.push_back(std::move(diag));
    }
  }
}

// ------------------------------------- DHPF-L005 / L006 distribution lints

void check_distribution(const hpf::Program& prog, Report& rep) {
  // L005: arrays BLOCK-distributed on one grid dimension must imply the
  // same template extent (extent + alignment offset) — analysis/sets.cpp
  // enforces this with a hard error; the lint reports it with locations.
  std::map<int, std::pair<const hpf::Array*, int>> extent_on_dim;  // grid dim -> (first, e)
  for (const auto& a : prog.arrays()) {
    if (!a->dist.grid) continue;
    for (std::size_t d = 0; d < a->dist.dims.size() && d < a->extents.size(); ++d) {
      const auto& dim = a->dist.dims[d];
      if (dim.kind != hpf::DistKind::Block) continue;
      ++rep.checks_run;
      const int e = a->extents[d] + a->dist.offset(d);
      auto [it, fresh] = extent_on_dim.try_emplace(dim.proc_dim, a.get(), e);
      if (!fresh && it->second.second != e) {
        Diagnostic diag;
        diag.code = Code::AlignConformance;
        diag.severity = Severity::Error;
        diag.loc = a->loc;
        diag.array = a->name;
        std::ostringstream msg;
        msg << "array '" << a->name << "' implies template extent " << e
            << " on grid dimension " << dim.proc_dim << ", but array '"
            << it->second.first->name << "' (" << it->second.first->loc.to_string()
            << ") implies " << it->second.second;
        diag.message = msg.str();
        rep.diagnostics.push_back(std::move(diag));
      }
      // L006: HPF BLOCK gives every rank ceil(e/p) elements; trailing ranks
      // may own nothing, which is legal but usually a mis-sized grid.
      const int p = a->dist.grid->extents[static_cast<std::size_t>(dim.proc_dim)];
      if (p > 1) {
        const int b = (e + p - 1) / p;
        const int used = (e + b - 1) / b;
        if (used < p) {
          Diagnostic diag;
          diag.code = Code::EmptyBlock;
          diag.severity = Severity::Warning;
          diag.loc = a->loc;
          diag.array = a->name;
          std::ostringstream msg;
          msg << "BLOCK distribution of '" << a->name << "' leaves " << p - used << " of " << p
              << " ranks empty on grid dimension " << dim.proc_dim << " (block size " << b
              << ", template extent " << e << ")";
          diag.message = msg.str();
          rep.diagnostics.push_back(std::move(diag));
        }
      }
    }
  }
}

// --------------------------------------- DHPF-L007 NEW/LOCALIZE conformance

void check_privatizable(const hpf::Program& prog, const hpf::Procedure& proc, Report& rep) {
  const Params params;
  hpf::walk(proc.body, [&](Stmt& s, const std::vector<const Loop*>& path) {
    if (!s.is_loop()) return;
    const Loop& loop = s.loop();
    auto unknown = [&](const std::string& n, const char* attr) {
      ++rep.checks_run;
      const hpf::Array* a = prog.find_array(n);
      if (a) return a;
      Diagnostic diag;
      diag.code = Code::NonPrivatizable;
      diag.severity = Severity::Error;
      diag.loc = loop.loc;
      diag.array = n;
      diag.message = std::string(attr) + " names unknown array '" + n + "'";
      rep.diagnostics.push_back(std::move(diag));
      return static_cast<const hpf::Array*>(nullptr);
    };
    for (const auto& n : loop.localize_vars) unknown(n, "LOCALIZE");
    for (const auto& n : loop.new_vars) {
      const hpf::Array* arr = unknown(n, "NEW");
      if (!arr) continue;
      // Per-iteration use/def gap, mirroring analysis::check_privatizable
      // but keeping the gap set for a witness. The def relation may be an
      // over-approximation for non-unit subscript coefficients, which only
      // shrinks the gap — a sampled gap point is always a true positive.
      const std::size_t keep = path.size() + 1;
      const std::size_t out_dims = keep + arr->extents.size();
      Set defs = Set::empty(out_dims, params);
      Set uses = Set::empty(out_dims, params);
      std::vector<const Loop*> base = path;
      base.push_back(&loop);
      bool ok = true;
      try {
        hpf::walk(loop.body, [&](Stmt& inner, const std::vector<const Loop*>& rel) {
          if (!inner.is_assign()) return;
          std::vector<const Loop*> full = base;
          full.insert(full.end(), rel.begin(), rel.end());
          const auto& a = inner.assign();
          auto relation = [&](const Ref& ref) {
            const IterSpace is = iteration_space(full, params);
            if (!subscripts_bound(is, ref)) throw dhpf::Error("lint", "unbound subscript");
            iset::AffineMap m(is.depth(), keep + ref.subs.size(), params);
            for (std::size_t d = 0; d < keep; ++d) m.out(d) = m.expr_var(d);
            for (std::size_t d = 0; d < ref.subs.size(); ++d)
              m.out(keep + d) = subscript_expr(is, ref.subs[d], params);
            return Set(is.bounds).apply(m);
          };
          if (a.lhs.array == arr) defs = defs.unite(relation(a.lhs));
          for (const auto& r : a.rhs)
            if (r.array == arr) uses = uses.unite(relation(r));
        });
      } catch (const dhpf::Error&) {
        ok = false;
      }
      if (!ok) continue;
      const Set gap = uses.subtract(defs);
      if (gap.is_empty()) continue;
      DHPF_COUNTER("lint.privatizable_gaps");
      Diagnostic diag;
      diag.code = Code::NonPrivatizable;
      diag.loc = loop.loc;
      diag.array = arr->name;
      std::ostringstream msg;
      msg << "NEW array '" << arr->name
          << "' is not privatizable in loop '" << loop.var
          << "': an iteration reads an element it did not first write";
      const auto pt = gap.sample({});
      if (pt) {
        diag.severity = Severity::Error;
        std::vector<std::string> names;
        for (const auto* l : base) names.push_back(l->var);
        diag.witness.iter_names = std::move(names);
        diag.witness.iter.assign(pt->begin(), pt->begin() + static_cast<long>(keep));
        diag.witness.has_iter = true;
        diag.witness.element.assign(pt->begin() + static_cast<long>(keep), pt->end());
        diag.witness.has_element = true;
      } else {
        diag.severity = Severity::Warning;
        msg << " (gap set non-empty rationally; no integer witness found)";
      }
      diag.message = msg.str();
      rep.diagnostics.push_back(std::move(diag));
    }
  });
}

}  // namespace

Report run(const hpf::Program& prog, const LintOptions& opt) {
  obs::ScopedTimer timer("lint.run");
  Report rep;
  for (const auto& proc : prog.procedures()) {
    if (opt.check_race) check_races(*proc, rep);
    if (opt.check_uninit) check_uninit_reads(prog, *proc, rep);
    if (opt.check_bounds) check_bounds(*proc, rep);
    if (opt.check_dead_store) check_dead_stores(prog, *proc, rep);
    if (opt.check_privatizable) check_privatizable(prog, *proc, rep);
  }
  if (opt.check_distribution) check_distribution(prog, rep);
  rep.sort();
  return rep;
}

Report run_source(const std::string& source, const LintOptions& opt) {
  hpf::Program prog = hpf::parse(source);
  Report rep = run(prog, opt);
  add_snippets(rep, source);
  return rep;
}

}  // namespace dhpf::lint
