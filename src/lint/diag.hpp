// dhpf::lint diagnostics: structured findings with stable codes, severity,
// source locations, concrete witnesses, caret snippets, and a JSON form.
//
// Every check in lint.hpp reports through this layer. Codes are stable
// (DHPF-L001..) so tooling and the golden tests can match on them; the
// catalog with one minimal triggering program per code lives in
// docs/linter.md. Ordering is canonical (location, then code, then
// message), which is what makes linter output byte-identical across runs —
// tests/lint_test.cpp pins that.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hpf/ir.hpp"
#include "iset/set.hpp"

namespace dhpf::lint {

/// The check catalog. Numbering is part of the contract: a code never
/// changes meaning, and retired codes are not reused.
enum class Code {
  StaticRace = 1,      ///< DHPF-L001: carried dependence in an INDEPENDENT loop
  UninitRead = 2,      ///< DHPF-L002: read of a `local` array before any write
  OutOfBounds = 3,     ///< DHPF-L003: subscript provably outside the extent
  DeadStore = 4,       ///< DHPF-L004: store killed before any read
  AlignConformance = 5,///< DHPF-L005: template extents disagree on a grid dim
  EmptyBlock = 6,      ///< DHPF-L006: BLOCK distribution leaves ranks empty
  NonPrivatizable = 7, ///< DHPF-L007: NEW/LOCALIZE names a bad/unproven array
};

enum class Severity { Error, Warning };

/// "DHPF-L001" etc.
const char* code_id(Code c);
/// Short kebab-case name: "static-race" etc.
const char* code_name(Code c);
const char* to_string(Severity s);

/// Concrete evidence attached to a finding. Which fields are set depends on
/// the code: a race carries two iteration vectors and the touched element;
/// uninit-read and out-of-bounds carry an element (and one iteration).
struct Witness {
  std::vector<std::string> iter_names;  ///< loop variables, outer..inner
  std::vector<iset::i64> iter;          ///< first iteration vector
  std::vector<iset::i64> iter2;         ///< second iteration (races only)
  std::vector<iset::i64> element;       ///< array element tuple
  bool has_iter = false;
  bool has_iter2 = false;
  bool has_element = false;

  [[nodiscard]] bool empty() const { return !has_iter && !has_element; }
  [[nodiscard]] std::string to_string() const;
};

struct Diagnostic {
  Code code = Code::StaticRace;
  Severity severity = Severity::Error;
  hpf::SrcLoc loc;          ///< anchor in the source text (may be invalid)
  std::string message;      ///< one-line claim, location/code not included
  std::string array;        ///< array the finding is about (may be empty)
  Witness witness;
  std::string snippet;      ///< caret snippet; filled when source is known

  /// "12:5: error: DHPF-L001 [static-race]: <message> [witness]"
  [[nodiscard]] std::string to_string() const;
};

struct Report {
  std::vector<Diagnostic> diagnostics;
  std::size_t checks_run = 0;  ///< individual (loop/ref/array) checks

  [[nodiscard]] std::size_t errors() const;
  [[nodiscard]] std::size_t warnings() const;
  [[nodiscard]] bool clean() const { return errors() == 0; }
  [[nodiscard]] std::vector<const Diagnostic*> by_code(Code c) const;
  [[nodiscard]] bool has(Code c, Severity s) const;

  /// Canonical order: (line, col, code, message). Called by lint::run;
  /// idempotent.
  void sort();

  /// Human-readable listing (with caret snippets when filled) plus the
  /// "N errors, M warnings" trailer.
  [[nodiscard]] std::string to_string() const;
  /// Machine-readable form (embedded in dhpfc's --report-json document).
  [[nodiscard]] std::string to_json() const;
};

/// Fill each diagnostic's caret snippet from the original source text:
/// the source line followed by a '^' marker line at the column.
void add_snippets(Report& report, const std::string& source);

/// The snippet for one location ("  <line text>\n  ^" style); empty when
/// the location is invalid or past the end of the text.
std::string caret_snippet(const std::string& source, hpf::SrcLoc loc);

}  // namespace dhpf::lint
