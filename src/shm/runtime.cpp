#include "shm/runtime.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "support/diagnostics.hpp"
#include "support/metrics.hpp"
#include "trace/trace.hpp"

namespace dhpf::shm {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_between(SteadyClock::time_point a, SteadyClock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Raised in ranks that were force-woken by the deadlock watchdog, so the
/// driver can distinguish the (shared) abort from a rank's own failure.
struct AbortError : Error {
  explicit AbortError(const std::string& msg) : Error("shm", msg) {}
};

struct ShmMessage {
  int src = 0;
  int tag = 0;
  std::vector<double> data;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<ShmMessage> q;
};

/// The central sense-reversing barrier. `generation` advances on every
/// release; waiters block until their entry generation is superseded. All
/// fields (and the endpoints' barrier-blocked flags) are mutated under `mu`,
/// which is what makes the watchdog's barrier classification race-free.
struct CentralBarrier {
  std::mutex mu;
  std::condition_variable cv;
  int count = 0;
  std::uint64_t generation = 0;
};

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Sentinel want_tag for a rank parked at the barrier (real tags are >= 0).
constexpr int kBarrierTag = -2;

/// First message (FIFO delivery order) matching (src, tag); src may be
/// kAnySource. Caller holds the mailbox mutex.
std::size_t find_match(const Mailbox& box, int src, int tag) {
  for (std::size_t i = 0; i < box.q.size(); ++i) {
    const ShmMessage& m = box.q[i];
    if ((src == kAnySource || m.src == src) && m.tag == tag) return i;
  }
  return kNpos;
}

class Runtime;

class Endpoint final : public exec::Channel {
 public:
  Endpoint(Runtime* rt, int rank) : rt_(rt), rank_(rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int nprocs() const override;
  [[nodiscard]] double now() const override;
  [[nodiscard]] const exec::Machine& machine() const override;

  void compute(double flops) override;
  void elapse(double seconds) override;

  void set_phase(std::string phase) override {
    const auto t = SteadyClock::now();
    phase_wall_[phase_] += seconds_between(phase_enter_, t);
    phase_ = std::move(phase);
    phase_enter_ = t;
  }
  [[nodiscard]] const std::string& phase() const override { return phase_; }

  void send(int dst, int tag, std::vector<double> data) override;
  [[nodiscard]] bool has_message(int src, int tag) const override;

  /// The shared-memory primitives (see shm::barrier / shm::note_shared_read).
  void barrier_wait();
  void add_shared_read(std::size_t bytes) { stats.shared_read_bytes += bytes; }

  /// Realize any outstanding modelled compute (Spin/Sleep) in host time.
  void flush_compute(bool force);
  /// Close the open phase interval; called once when the rank finishes.
  void finish();

  RankStats stats;
  /// phase -> total wall / blocked real seconds on this rank.
  std::map<std::string, double> phase_wall_;
  std::map<std::string, double> phase_wait_;

  /// Publish (src, tag) then raise the blocked flag, in that order.
  void want_src_store(int src, int tag);

  // Watchdog-visible blocked state. For receive waits these are mutated
  // only while holding this rank's mailbox mutex (as in mp); for barrier
  // waits (want_tag == kBarrierTag) only while holding the barrier mutex.
  // The watchdog takes the matching lock before trusting a classification.
  std::atomic<bool> blocked{false};
  std::atomic<bool> done{false};
  std::atomic<int> want_src{0};
  std::atomic<int> want_tag{0};
  /// Generation this rank waits to end; read/written under the barrier mutex.
  std::uint64_t barrier_gen_wanted = 0;

 protected:
  bool recv_ready(int src, int tag) override;
  void recv_suspend(int, int, std::coroutine_handle<>) override {
    fail("shm", "internal: coroutine suspended on the shm backend");
  }
  std::vector<double> recv_complete(int src, int tag) override;

 private:
  Runtime* rt_;
  int rank_;
  std::string phase_;
  SteadyClock::time_point phase_enter_;
  double debt_seconds_ = 0.0;  ///< modelled compute not yet realized
  std::vector<double> pending_;  ///< payload stashed by recv_ready
  int pending_src_ = kAnySource;
  bool have_pending_ = false;

  friend class Runtime;
};

class Runtime {
 public:
  Runtime(int nranks, const Options& opt,
          const std::function<exec::Task(exec::Channel&)>& body)
      : opt_(opt), body_(body) {
    require(nranks > 0, "shm", "need at least one rank");
    boxes_ = std::make_unique<Mailbox[]>(static_cast<std::size_t>(nranks));
    endpoints_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) endpoints_.push_back(std::make_unique<Endpoint>(this, r));
    errors_.resize(static_cast<std::size_t>(nranks));
  }

  [[nodiscard]] int nranks() const { return static_cast<int>(endpoints_.size()); }
  [[nodiscard]] const Options& options() const { return opt_; }
  [[nodiscard]] Mailbox& box(int rank) { return boxes_[static_cast<std::size_t>(rank)]; }
  [[nodiscard]] const Mailbox& box(int rank) const {
    return boxes_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] CentralBarrier& bar() { return barrier_; }
  [[nodiscard]] SteadyClock::time_point start_time() const { return start_; }

  [[nodiscard]] bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  [[nodiscard]] std::string abort_message() const {
    std::lock_guard<std::mutex> lock(abort_mu_);
    return abort_msg_;
  }

  void deliver(int dst, ShmMessage msg) {
    require(dst >= 0 && dst < nranks(), "shm", "send: destination rank out of range");
    Mailbox& b = box(dst);
    {
      std::lock_guard<std::mutex> lock(b.mu);
      b.q.push_back(std::move(msg));
    }
    deliveries_.fetch_add(1, std::memory_order_release);
    b.cv.notify_all();
  }

  /// Called by the releasing rank of a barrier episode (under the barrier
  /// mutex): progress signal for the watchdog plus the global episode count.
  void note_barrier_release() { barrier_epochs_.fetch_add(1, std::memory_order_release); }
  [[nodiscard]] std::uint64_t barrier_epochs() const {
    return barrier_epochs_.load(std::memory_order_acquire);
  }

  double run(Stats* stats_out);

 private:
  void rank_main(int r);
  void watchdog_main();
  /// One precise deadlock scan; fires the abort and returns true on deadlock.
  bool deadlock_scan();
  void abort_run(const std::string& msg);

  Options opt_;
  const std::function<exec::Task(exec::Channel&)>& body_;
  std::unique_ptr<Mailbox[]> boxes_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::exception_ptr> errors_;
  CentralBarrier barrier_;
  SteadyClock::time_point start_;

  std::atomic<std::uint64_t> deliveries_{0};
  std::atomic<std::uint64_t> barrier_epochs_{0};
  std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mu_;
  std::string abort_msg_;

  // watchdog shutdown signalling
  std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;

  friend class Endpoint;
};

// ---------------------------------------------------------------- Endpoint

int Endpoint::nprocs() const { return rt_->nranks(); }

double Endpoint::now() const { return seconds_between(rt_->start_time(), SteadyClock::now()); }

const exec::Machine& Endpoint::machine() const { return rt_->options().machine; }

void Endpoint::compute(double flops) { elapse(flops * rt_->options().machine.flop_time); }

void Endpoint::elapse(double seconds) {
  require(seconds >= 0.0, "shm", "negative compute time");
  stats.compute_seconds += seconds;
  if (rt_->options().compute_mode != ComputeMode::Noop)
    debt_seconds_ += seconds * rt_->options().time_scale;
  // Batch tiny per-statement charges; sub-granularity sleeps/spins would
  // swamp the run with syscall overhead.
  if (debt_seconds_ > 100e-6) flush_compute(false);
}

void Endpoint::flush_compute(bool force) {
  if (debt_seconds_ <= 0.0) return;
  const ComputeMode mode = rt_->options().compute_mode;
  if (mode == ComputeMode::Noop) {
    debt_seconds_ = 0.0;
    return;
  }
  if (!force && debt_seconds_ <= 50e-6) return;
  DHPF_TRACE_SPAN("shm.compute", trace::Kind::Compute);
  const std::chrono::duration<double> d(debt_seconds_);
  if (mode == ComputeMode::Sleep) {
    std::this_thread::sleep_for(d);
  } else {
    const auto until = SteadyClock::now() + std::chrono::duration_cast<SteadyClock::duration>(d);
    while (SteadyClock::now() < until) {
      // busy-wait; keep the loop observable to the optimizer
      std::atomic_signal_fence(std::memory_order_seq_cst);
    }
  }
  debt_seconds_ = 0.0;
}

void Endpoint::finish() {
  flush_compute(true);
  const auto t = SteadyClock::now();
  phase_wall_[phase_] += seconds_between(phase_enter_, t);
}

void Endpoint::send(int dst, int tag, std::vector<double> data) {
  flush_compute(false);
  DHPF_TRACE_SPAN("shm.send", trace::Kind::Send);
  const std::size_t bytes = data.size() * sizeof(double);
  rt_->deliver(dst, ShmMessage{rank_, tag, std::move(data)});
  ++stats.sends;
  stats.bytes_sent += bytes;
}

bool Endpoint::has_message(int src, int tag) const {
  const Mailbox& b = rt_->box(rank_);
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(b.mu));
  return find_match(b, src, tag) != kNpos;
}

bool Endpoint::recv_ready(int src, int tag) {
  require(src == kAnySource || (src >= 0 && src < rt_->nranks()), "shm",
          "recv: source rank out of range");
  flush_compute(false);
  DHPF_TRACE_SPAN("shm.recv", trace::Kind::Recv);
  Mailbox& b = rt_->box(rank_);
  std::unique_lock<std::mutex> lock(b.mu);
  std::size_t idx = find_match(b, src, tag);
  if (idx == kNpos && !rt_->aborted()) {
    // The wait span stays open while the rank is parked — a deadlocked
    // rank's flight recorder therefore ends with an [open] shm.wait, which
    // is exactly what the watchdog dump shows.
    DHPF_TRACE_SPAN("shm.wait", trace::Kind::Wait);
    want_src_store(src, tag);
    const auto start = SteadyClock::now();
    const double timeout = rt_->options().recv_timeout_s;
    const auto deadline =
        start + std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(timeout > 0.0 ? timeout : 0.0));
    bool timed_out = false;
    while (true) {
      idx = find_match(b, src, tag);
      if (idx != kNpos || rt_->aborted()) break;
      if (timeout > 0.0) {
        if (b.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
          idx = find_match(b, src, tag);  // final re-check under the lock
          if (idx != kNpos || rt_->aborted()) break;
          timed_out = true;
          break;
        }
      } else {
        b.cv.wait(lock);
      }
    }
    blocked.store(false, std::memory_order_seq_cst);
    const double waited = seconds_between(start, SteadyClock::now());
    stats.wait_seconds += waited;
    phase_wait_[phase_] += waited;
    if (timed_out) {
      std::ostringstream msg;
      msg << "recv timeout: rank " << rank_ << " waited "
          << rt_->options().recv_timeout_s << "s on (src=" << src << ", tag=" << tag
          << ") — missing send or deadlock";
      fail("shm", msg.str());
    }
  }
  if (idx == kNpos) {
    // Force-woken by the watchdog with nothing to consume.
    throw AbortError(rt_->abort_message());
  }
  ShmMessage msg = std::move(b.q[idx]);
  b.q.erase(b.q.begin() + static_cast<std::ptrdiff_t>(idx));
  lock.unlock();
  ++stats.recvs;
  stats.bytes_received += msg.data.size() * sizeof(double);
  pending_ = std::move(msg.data);
  pending_src_ = msg.src;
  have_pending_ = true;
  return true;
}

void Endpoint::want_src_store(int src, int tag) {
  // Publish what we are waiting for *before* raising the blocked flag so
  // the watchdog never reads a stale (src, tag) for a blocked rank.
  want_src.store(src, std::memory_order_seq_cst);
  want_tag.store(tag, std::memory_order_seq_cst);
  blocked.store(true, std::memory_order_seq_cst);
}

std::vector<double> Endpoint::recv_complete(int, int) {
  require(have_pending_, "shm", "internal: recv completed without a matched message");
  have_pending_ = false;
  return std::move(pending_);
}

void Endpoint::barrier_wait() {
  flush_compute(false);
  DHPF_TRACE_SPAN("shm.barrier", trace::Kind::Wait);
  CentralBarrier& bar = rt_->bar();
  std::unique_lock<std::mutex> lock(bar.mu);
  if (rt_->aborted()) throw AbortError(rt_->abort_message());
  ++stats.barriers;
  const std::uint64_t gen = bar.generation;
  if (++bar.count == rt_->nranks()) {
    bar.count = 0;
    ++bar.generation;
    rt_->note_barrier_release();
    bar.cv.notify_all();
    return;
  }
  // Watchdog-visible barrier wait, published under the barrier mutex.
  want_src.store(kAnySource, std::memory_order_seq_cst);
  want_tag.store(kBarrierTag, std::memory_order_seq_cst);
  barrier_gen_wanted = gen;
  blocked.store(true, std::memory_order_seq_cst);
  const auto start = SteadyClock::now();
  const double timeout = rt_->options().recv_timeout_s;
  const auto deadline =
      start + std::chrono::duration_cast<SteadyClock::duration>(
                  std::chrono::duration<double>(timeout > 0.0 ? timeout : 0.0));
  bool timed_out = false;
  while (bar.generation == gen && !rt_->aborted()) {
    if (timeout > 0.0) {
      if (bar.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        if (bar.generation != gen || rt_->aborted()) break;
        timed_out = true;
        break;
      }
    } else {
      bar.cv.wait(lock);
    }
  }
  blocked.store(false, std::memory_order_seq_cst);
  const double waited = seconds_between(start, SteadyClock::now());
  stats.wait_seconds += waited;
  phase_wait_[phase_] += waited;
  if (bar.generation != gen) return;  // released normally
  if (timed_out) {
    std::ostringstream msg;
    msg << "barrier timeout: rank " << rank_ << " waited "
        << rt_->options().recv_timeout_s << "s with " << bar.count << "/"
        << rt_->nranks() << " ranks arrived — a peer died or deadlocked";
    fail("shm", msg.str());
  }
  // Force-woken by the watchdog with the barrier still shut.
  throw AbortError(rt_->abort_message());
}

// ----------------------------------------------------------------- Runtime

void Runtime::rank_main(int r) {
  Endpoint& ep = *endpoints_[static_cast<std::size_t>(r)];
  if (trace::Recorder::global().enabled())
    trace::Recorder::global().set_thread_label("rank" + std::to_string(r), r);
  ep.phase_enter_ = SteadyClock::now();
  try {
    exec::Task root = body_(ep);
    if (root.handle()) root.handle().resume();
    require(root.done(), "shm", "rank returned control without completing");
    root.rethrow_if_failed();
  } catch (...) {
    errors_[static_cast<std::size_t>(r)] = std::current_exception();
  }
  ep.finish();
  ep.done.store(true, std::memory_order_seq_cst);
}

bool Runtime::deadlock_scan() {
  // Sound for the same reason the mp scan is (sends bump deliveries_, a
  // recv-blocked rank only unblocks after a delivery or abort/timeout),
  // extended with barrier waits: a barrier release bumps barrier_epochs_,
  // and a rank parked at the barrier can only proceed once its entry
  // generation is superseded. If every unfinished rank is observed blocked
  // — recv-blocked with no matching pending message (under its mailbox
  // lock), or barrier-blocked on the current generation (under the barrier
  // lock) — and neither counter moved across the scan, none of them can
  // ever make progress again.
  const std::uint64_t before_d = deliveries_.load(std::memory_order_acquire);
  const std::uint64_t before_b = barrier_epochs();
  std::ostringstream who;
  int blocked_count = 0, live = 0;
  for (int r = 0; r < nranks(); ++r) {
    Endpoint& ep = *endpoints_[static_cast<std::size_t>(r)];
    if (ep.done.load(std::memory_order_seq_cst)) continue;
    ++live;
    bool at_barrier = false;
    {
      Mailbox& b = box(r);
      std::lock_guard<std::mutex> lock(b.mu);
      if (!ep.blocked.load(std::memory_order_seq_cst)) return false;
      const int src = ep.want_src.load(std::memory_order_seq_cst);
      const int tag = ep.want_tag.load(std::memory_order_seq_cst);
      if (tag == kBarrierTag) {
        at_barrier = true;
      } else {
        if (find_match(b, src, tag) != kNpos) return false;  // about to wake
        who << " rank " << r << " waiting on (src=" << src << ", tag=" << tag << ")";
        ++blocked_count;
      }
    }
    if (at_barrier) {
      // Confirm under the barrier mutex: the rank is genuinely parked on the
      // *current* generation (a stale flag after a release is progress).
      std::lock_guard<std::mutex> lock(barrier_.mu);
      if (!ep.blocked.load(std::memory_order_seq_cst) ||
          ep.want_tag.load(std::memory_order_seq_cst) != kBarrierTag)
        return false;
      if (barrier_.generation != ep.barrier_gen_wanted) return false;  // released
      who << " rank " << r << " waiting at barrier (" << barrier_.count << "/"
          << nranks() << " arrived)";
      ++blocked_count;
    }
  }
  if (live == 0 || blocked_count < live) return false;
  if (deliveries_.load(std::memory_order_acquire) != before_d) return false;
  if (barrier_epochs() != before_b) return false;
  abort_run("deadlock:" + who.str());
  return true;
}

void Runtime::abort_run(const std::string& msg) {
  {
    std::lock_guard<std::mutex> lock(abort_mu_);
    if (abort_msg_.empty()) abort_msg_ = msg;
  }
  // Before waking anyone: every stuck rank is parked, so the flight
  // recorders are a consistent picture of how the run got here.
  trace::Recorder& rec = trace::Recorder::global();
  if (rec.enabled()) {
    std::string dump = "shm watchdog: " + msg + "\n" + rec.flight_dump_text();
    std::fputs(dump.c_str(), stderr);
  }
  aborted_.store(true, std::memory_order_release);
  for (int r = 0; r < nranks(); ++r) {
    // Acquire-release on each mailbox mutex so parked ranks observe the
    // abort flag when they re-check their wait predicate.
    std::lock_guard<std::mutex> lock(box(r).mu);
    box(r).cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_.mu);
    barrier_.cv.notify_all();
  }
}

void Runtime::watchdog_main() {
  const auto period = std::chrono::duration<double>(opt_.watchdog_period_s);
  std::unique_lock<std::mutex> lock(wd_mu_);
  while (!wd_stop_) {
    if (wd_cv_.wait_for(lock, period, [&] { return wd_stop_; })) return;
    lock.unlock();
    const bool fired = deadlock_scan();
    lock.lock();
    if (fired) return;
  }
}

double Runtime::run(Stats* stats_out) {
  const int n = nranks();
  start_ = SteadyClock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) threads.emplace_back([this, r] { rank_main(r); });
  std::thread watchdog;
  if (opt_.watchdog_period_s > 0.0) watchdog = std::thread([this] { watchdog_main(); });

  for (auto& t : threads) t.join();
  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wd_mu_);
      wd_stop_ = true;
    }
    wd_cv_.notify_all();
    watchdog.join();
  }
  const double wall = seconds_between(start_, SteadyClock::now());

  // Rank failures: report the first rank-originated error; fall back to the
  // watchdog's deadlock description when every failure is the shared abort.
  std::string abort_text;
  for (int r = 0; r < n; ++r) {
    if (!errors_[static_cast<std::size_t>(r)]) continue;
    try {
      std::rethrow_exception(errors_[static_cast<std::size_t>(r)]);
    } catch (const AbortError& e) {
      if (abort_text.empty()) abort_text = e.what();
    } catch (const std::exception& e) {
      fail("shm", "rank " + std::to_string(r) + " failed: " + e.what());
    }
  }
  if (!abort_text.empty()) throw Error("shm", abort_message());

  Stats stats;
  stats.wall_seconds = wall;
  stats.barriers = static_cast<std::size_t>(barrier_epochs());
  stats.ranks.reserve(static_cast<std::size_t>(n));
  std::map<std::string, Stats::PhaseRow> phases;
  for (int r = 0; r < n; ++r) {
    Endpoint& ep = *endpoints_[static_cast<std::size_t>(r)];
    stats.ranks.push_back(ep.stats);
    stats.messages += ep.stats.sends;
    stats.bytes += ep.stats.bytes_sent;
    stats.shared_read_bytes += ep.stats.shared_read_bytes;
    for (const auto& [name, wall_s] : ep.phase_wall_) {
      Stats::PhaseRow& row = phases[name];
      row.phase = name;
      const auto wit = ep.phase_wait_.find(name);
      const double wait_s = wit == ep.phase_wait_.end() ? 0.0 : wit->second;
      row.busy += wall_s - wait_s;
      row.wait += wait_s;
    }
  }
  for (auto& [name, row] : phases) stats.phases.push_back(row);

  // Observability: the counters/gauges/timers the benches and obs docs read.
  obs::Registry& reg = obs::Registry::global();
  reg.add("shm.runs");
  reg.add("shm.messages", stats.messages);
  reg.add("shm.bytes", stats.bytes);
  reg.add("shm.barriers", stats.barriers);
  reg.add("shm.shared_bytes", stats.shared_read_bytes);
  for (int r = 0; r < n; ++r) {
    const RankStats& rs = stats.ranks[static_cast<std::size_t>(r)];
    const std::string prefix = "shm.rank" + std::to_string(r);
    reg.set_gauge(prefix + ".sends", static_cast<double>(rs.sends));
    reg.set_gauge(prefix + ".recvs", static_cast<double>(rs.recvs));
    reg.set_gauge(prefix + ".wait_seconds", rs.wait_seconds);
  }
  for (const auto& row : stats.phases)
    if (!row.phase.empty()) reg.timer("shm.phase." + row.phase).add(row.busy);

  if (stats_out) *stats_out = std::move(stats);
  return wall;
}

}  // namespace

void barrier(exec::Channel& ch) {
  auto* ep = dynamic_cast<Endpoint*>(&ch);
  require(ep != nullptr, "shm", "barrier: channel does not belong to an shm run");
  ep->barrier_wait();
}

void note_shared_read(exec::Channel& ch, std::size_t bytes) {
  auto* ep = dynamic_cast<Endpoint*>(&ch);
  require(ep != nullptr, "shm",
          "note_shared_read: channel does not belong to an shm run");
  ep->add_shared_read(bytes);
}

bool is_shm_channel(const exec::Channel& ch) {
  return dynamic_cast<const Endpoint*>(&ch) != nullptr;
}

double watchdog_period_from_env(double fallback) {
  const char* env = std::getenv("DHPF_SHM_WATCHDOG_MS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double ms = std::strtod(env, &end);
  if (end == env || *end != '\0') return fallback;  // not a number: ignore
  return ms <= 0.0 ? 0.0 : ms / 1000.0;
}

double run(int nranks, const Options& opt,
           const std::function<exec::Task(exec::Channel&)>& body, Stats* stats_out) {
  Options effective = opt;
  effective.watchdog_period_s = watchdog_period_from_env(opt.watchdog_period_s);
  Runtime rt(nranks, effective, body);
  return rt.run(stats_out);
}

double run(int nranks, const std::function<exec::Task(exec::Channel&)>& body,
           Stats* stats_out) {
  return run(nranks, Options{}, body, stats_out);
}

}  // namespace dhpf::shm
