// dhpf::shm — the shared-memory threaded runtime.
//
// The third execution backend behind exec::Channel: like src/mp it runs the
// SPMD node programs on real OS threads (one per rank, monotonic-clock
// time), but the ranks share one address space by construction and the
// runtime exposes the two primitives a shared-memory lowering needs:
//
//   * shm::barrier(ch) — a phase barrier across all ranks of the run. The
//     codegen layer places a barrier pair around every communication-event
//     instance derived from the comm plan, which turns each fetch /
//     write-back into direct reads of the producing rank's storage with no
//     message copies (see codegen::exec_event and docs/runtime.md).
//   * shm::note_shared_read(ch, bytes) — accounting for those direct
//     reads, the shm analogue of message bytes (Stats::shared_read_bytes,
//     obs counter shm.shared_bytes).
//
// Mailboxes, tagged send/recv, wildcard sources, timeouts and the deadlock
// watchdog all carry over from mp unchanged, so collectives
// (exec/collectives.hpp) and message-passing node programs (the NAS
// variants) run on shm as-is; the watchdog additionally understands ranks
// parked at a barrier, so a rank that dies while its peers wait at a
// barrier is reported as a deadlock instead of hanging CI.
//
// Determinism: identical to mp — named-source receives and barriers are
// deterministic, wildcard receives match in real arrival order. The
// barrier-synchronized direct reads are deterministic by construction:
// within a barrier epoch each rank reads only locations no other rank is
// writing (ownership-disjoint), so results are bit-identical to the serial
// oracle, the simulator, and mp.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exec/channel.hpp"
#include "exec/task.hpp"
#include "mp/runtime.hpp"

namespace dhpf::shm {

inline constexpr int kAnySource = exec::kAnySource;

/// compute()/elapse() behaviour — same semantics as mp::ComputeMode.
using ComputeMode = mp::ComputeMode;

struct Options {
  ComputeMode compute_mode = ComputeMode::Noop;
  /// Cost model used to convert flops to seconds for Spin/Sleep and served
  /// by Channel::machine() for cost heuristics.
  exec::Machine machine = exec::Machine::sp2();
  /// Dilation factor applied to modelled compute time in Spin/Sleep modes.
  double time_scale = 1.0;
  /// Per-receive / per-barrier timeout in real seconds; waiting longer
  /// raises dhpf::Error. <= 0 disables (the watchdog still guards CI).
  double recv_timeout_s = 30.0;
  /// Blocked-rank watchdog scan period in real seconds; <= 0 disables.
  /// Overridable at runtime via DHPF_SHM_WATCHDOG_MS (milliseconds; 0
  /// disables) — see watchdog_period_from_env.
  double watchdog_period_s = 0.05;
};

/// Resolve the effective watchdog period: DHPF_SHM_WATCHDOG_MS (a real
/// number of milliseconds; <= 0 disables the watchdog) when set and
/// parseable, otherwise `fallback`. Exposed for direct unit testing; run()
/// applies it to Options::watchdog_period_s.
double watchdog_period_from_env(double fallback);

/// Per-rank activity counters (real seconds where noted).
struct RankStats {
  std::size_t sends = 0;
  std::size_t recvs = 0;
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  std::size_t barriers = 0;            ///< barrier episodes this rank entered
  std::size_t shared_read_bytes = 0;   ///< direct shared reads (note_shared_read)
  double wait_seconds = 0.0;     ///< real time blocked in recv or at a barrier
  double compute_seconds = 0.0;  ///< *modelled* seconds via compute()/elapse()
};

struct Stats {
  double wall_seconds = 0.0;  ///< real elapsed time of the run
  std::size_t messages = 0;
  std::size_t bytes = 0;
  std::size_t barriers = 0;           ///< barrier episodes (global releases)
  std::size_t shared_read_bytes = 0;  ///< direct shared reads, all ranks
  std::vector<RankStats> ranks;

  /// Real-time phase breakdown summed over ranks (see mp::Stats::PhaseRow).
  struct PhaseRow {
    std::string phase;
    double busy = 0.0;
    double wait = 0.0;
  };
  std::vector<PhaseRow> phases;
};

/// Rendezvous of every rank of the current shm run; returns once all ranks
/// have arrived. `ch` must be a channel handed out by shm::run — calling
/// this with a sim or mp channel raises dhpf::Error. Throws on timeout or
/// when the watchdog aborts the run (a peer died before the barrier).
void barrier(exec::Channel& ch);

/// Account `bytes` of direct shared-memory reads performed by this rank
/// between two barriers (the shm analogue of received message bytes).
void note_shared_read(exec::Channel& ch, std::size_t bytes);

/// True iff `ch` belongs to an shm run (barrier()/note_shared_read() work).
bool is_shm_channel(const exec::Channel& ch);

/// Execute `body(channel)` once per rank, each rank on its own OS thread in
/// this process's address space, and return the real elapsed seconds.
/// Throws dhpf::Error if any rank's coroutine throws, a receive or barrier
/// times out, or the watchdog detects deadlock.
///
/// Side effect: bumps dhpf::obs — counters shm.runs / shm.messages /
/// shm.bytes / shm.barriers / shm.shared_bytes, per-rank gauges
/// shm.rank<r>.{sends,recvs,wait_seconds}, and timers shm.phase.<label>.
double run(int nranks, const Options& opt,
           const std::function<exec::Task(exec::Channel&)>& body, Stats* stats_out = nullptr);

/// Convenience overload with default options.
double run(int nranks, const std::function<exec::Task(exec::Channel&)>& body,
           Stats* stats_out = nullptr);

}  // namespace dhpf::shm
