// Grammar-based generator of valid HPF-lite programs (the fuzzer's input
// half). Seeded and fully deterministic: the same seed yields a
// byte-identical program on every platform (rng.hpp pins the random
// mapping, hpf::to_source pins the rendering).
//
// The generated surface covers the paper shapes the compiler optimizes —
// block distributions over 1-d/2-d processor grids (with and without
// template alignment offsets), multi-statement stencil nests with
// loop-independent dependence chains (§5), privatizable-temporary nests in
// the Figure 4.1 shape (INDEPENDENT + NEW), LOCALIZE families in the
// Figure 4.2 shape, cross-processor recurrences (pipelines) and
// producer/consumer nest pairs — plus random compositions of them.
// Subscripts are affine with bounded offsets; every draw is checked against
// the loop-variable ranges so generated programs are in-bounds by
// construction (validity is pinned by tests/fuzz_test.cpp: every generated
// program parses, compiles and round-trips through the printer).
//
// Deliberate restrictions (documented in docs/fuzzing.md): one processor
// grid, BLOCK/replicated distributions only (the IR has no CYCLIC), no
// procedure calls (§6 needs alignment-aware call-site construction), and
// INDEPENDENT is only emitted where it provably holds — a wrong directive
// would be a bug in the *program*, and the oracle could not tell it from a
// bug in the compiler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dhpf::fuzz {

struct GenOptions {
  int max_nests = 3;         ///< top-level loop nests per program
  int max_family_arrays = 4; ///< distributed arrays per shape family
  bool allow_offsets = true; ///< template alignment offsets (misaligned rhs)
  bool allow_new = true;     ///< Figure 4.1 privatizable nests
  bool allow_localize = true;///< Figure 4.2 LOCALIZE nests
  bool allow_recurrence = true;  ///< cross-processor pipelines
  bool allow_triangular = true;  ///< inner bounds referencing outer vars
};

struct GeneratedCase {
  std::uint64_t seed = 0;
  std::string source;  ///< parseable HPF-lite text (hpf::parse round-trips)
};

/// Generate one program from `seed`. Deterministic; never returns an
/// invalid program (the generator only draws in-bounds subscripts).
GeneratedCase generate(std::uint64_t seed, const GenOptions& opt = {});

/// Candidate processor-grid shapes of rank `grid_rank` for differential
/// re-instantiation (diff.hpp runs every case under several of these).
/// Deterministic, small (total ranks <= 6 so the mp backend stays cheap).
std::vector<std::vector<int>> candidate_grid_shapes(int grid_rank);

}  // namespace dhpf::fuzz
