#include "fuzz/generator.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "fuzz/rng.hpp"
#include "hpf/ir.hpp"
#include "hpf/printer.hpp"
#include "support/diagnostics.hpp"

namespace dhpf::fuzz {

namespace {

using hpf::Array;
using hpf::Ref;
using hpf::StmtPtr;
using hpf::Subscript;

/// Inclusive value range of a loop variable in the current nest.
struct VarRange {
  long lo = 0;
  long hi = 0;
};
using Env = std::map<std::string, VarRange>;

bool fits(const Env& env, const std::string& var, long off, int ext) {
  const auto it = env.find(var);
  if (it == env.end()) return false;
  return it->second.lo + off >= 0 && it->second.hi + off <= ext - 1;
}

/// One dimension of the generated shape family.
struct DimSpec {
  bool block = false;
  int grid_dim = -1;  ///< valid when block
  int extent = 0;
};

struct Gen {
  Rng rng;
  hpf::Program prog;
  const GenOptions& opt;

  hpf::ProcGrid* grid = nullptr;
  std::vector<int> tmpl;  ///< template extent per grid dim

  std::vector<DimSpec> fam_dims;     ///< the family's uniform shape
  std::vector<Array*> family;        ///< uniformly shaped distributed arrays
  Array* misaligned = nullptr;       ///< family shape, offset alignment
  struct Temp {
    Array* array = nullptr;
    int fam_dim = 0;  ///< family dim whose extent sizes this temp
  };
  std::vector<Temp> temps;  ///< undistributed rank-1 privatizable temps

  int next_var = 0;

  Gen(std::uint64_t seed, const GenOptions& o) : rng(seed), opt(o) {}

  std::string fresh_var() { return "i" + std::to_string(next_var++); }

  // ------------------------------------------------------- declarations

  void make_decls() {
    const int grid_rank = rng.pick(1, 2);
    std::vector<int> shape;
    if (grid_rank == 1) {
      shape = {rng.pick(2, 4)};
    } else {
      shape = {rng.pick(1, 3), rng.pick(1, 3)};
      if (shape[0] * shape[1] == 1) shape[0] = 2;
    }
    grid = prog.add_grid("P", shape);
    const int ext_choices[] = {8, 10, 12};
    for (int g = 0; g < grid_rank; ++g) tmpl.push_back(ext_choices[rng.pick(0, 2)]);

    // Family shape: every grid dim maps to a distinct array dim; with some
    // probability one extra replicated dim (the Figure 4.1 "lhs(...,5)").
    const int rank = grid_rank + (rng.chance(1, 3) ? 1 : 0);
    fam_dims.assign(static_cast<std::size_t>(rank), DimSpec{});
    std::vector<int> slots(static_cast<std::size_t>(rank));
    for (int d = 0; d < rank; ++d) slots[static_cast<std::size_t>(d)] = d;
    for (int g = 0; g < grid_rank; ++g) {
      const int pick = rng.pick(0, static_cast<int>(slots.size()) - 1);
      const int d = slots[static_cast<std::size_t>(pick)];
      slots.erase(slots.begin() + pick);
      fam_dims[static_cast<std::size_t>(d)] =
          DimSpec{true, g, tmpl[static_cast<std::size_t>(g)]};
    }
    for (int d : slots) fam_dims[static_cast<std::size_t>(d)] = DimSpec{false, -1, rng.pick(3, 6)};

    const int nfam = rng.pick(2, std::max(2, opt.max_family_arrays));
    for (int i = 0; i < nfam; ++i) {
      const std::string name(1, static_cast<char>('a' + i));
      family.push_back(prog.add_array(name, fam_extents(), fam_dist(/*offset_dim=*/-1, 0)));
    }

    if (opt.allow_offsets && rng.chance(1, 4)) {
      // One extra array aligned to the family's template with a nonzero
      // offset on one block dim (its extent shrinks to keep the template
      // extents in agreement).
      std::vector<int> block_dims;
      for (std::size_t d = 0; d < fam_dims.size(); ++d)
        if (fam_dims[d].block) block_dims.push_back(static_cast<int>(d));
      const int od = rng.choice(block_dims);
      const int off = rng.pick(1, 2);
      std::vector<int> ext = fam_extents();
      ext[static_cast<std::size_t>(od)] -= off;
      misaligned = prog.add_array("m", std::move(ext), fam_dist(od, off));
    }

    const int ntemps = opt.allow_new ? rng.pick(0, 2) : 0;
    for (int i = 0; i < ntemps; ++i) {
      const int fd = rng.pick(0, static_cast<int>(fam_dims.size()) - 1);
      Array* t = prog.add_array("w" + std::to_string(i),
                                {fam_dims[static_cast<std::size_t>(fd)].extent});
      temps.push_back(Temp{t, fd});
    }
  }

  std::vector<int> fam_extents() const {
    std::vector<int> ext;
    for (const auto& d : fam_dims) ext.push_back(d.extent);
    return ext;
  }

  hpf::DistSpec fam_dist(int offset_dim, int offset) const {
    hpf::DistSpec dist;
    dist.grid = grid;
    for (const auto& d : fam_dims) {
      hpf::DistSpec::Dim dd;
      if (d.block) {
        dd.kind = hpf::DistKind::Block;
        dd.proc_dim = d.grid_dim;
      }
      dist.dims.push_back(dd);
    }
    if (offset_dim >= 0) {
      dist.template_offset.assign(fam_dims.size(), 0);
      dist.template_offset[static_cast<std::size_t>(offset_dim)] = offset;
    }
    return dist;
  }

  // -------------------------------------------------------- subscripts

  /// Subscript for dimension extent `ext`, preferring `var + off` with a
  /// random bounded offset, falling back to the unshifted variable and then
  /// to an in-bounds constant.
  Subscript sub(const Env& env, const std::string& var, int ext, int max_off) {
    if (max_off > 0) {
      const long off = rng.pick(-max_off, max_off);
      if (off != 0 && fits(env, var, off, ext)) return Subscript::var(var, 1, off);
    }
    if (fits(env, var, 0, ext)) return Subscript::var(var);
    return Subscript::constant(rng.pick(0, ext - 1));
  }

  /// Reference to `a` whose dims follow the family shape: looped dims use
  /// their loop variable (+ bounded offset), unlooped dims a constant.
  /// `loop_of_dim[d]` is the loop var of family dim d ("" when unlooped).
  Ref fam_ref(const Env& env, Array* a, const std::vector<std::string>& loop_of_dim,
              int max_off) {
    Ref r;
    r.array = a;
    for (std::size_t d = 0; d < a->extents.size(); ++d) {
      const int ext = a->extents[d];
      if (!loop_of_dim[d].empty())
        r.subs.push_back(sub(env, loop_of_dim[d], ext, max_off));
      else
        r.subs.push_back(Subscript::constant(rng.pick(0, ext - 1)));
    }
    return r;
  }

  /// Identity reference (loop vars, no offsets); unlooped dims constant.
  Ref fam_ref_identity(Array* a, const std::vector<std::string>& loop_of_dim,
                       const std::vector<int>& unlooped_const) {
    Ref r;
    r.array = a;
    for (std::size_t d = 0; d < a->extents.size(); ++d) {
      if (!loop_of_dim[d].empty())
        r.subs.push_back(Subscript::var(loop_of_dim[d]));
      else
        r.subs.push_back(Subscript::constant(unlooped_const[d]));
    }
    return r;
  }

  // ------------------------------------------------------------- nests

  /// A generic stencil nest over the family dims: 1-3 assignments whose rhs
  /// may read earlier statements' targets (the §5 loop-independent
  /// dependence chains), bounded stencil offsets, occasional non-owner
  /// writes (write-back traffic) and triangular inner bounds.
  StmtPtr stencil_nest() {
    const int max_off = rng.pick(0, 2);
    // Loop every block dim; loop replicated dims with probability 1/2.
    std::vector<int> looped;
    for (std::size_t d = 0; d < fam_dims.size(); ++d)
      if (fam_dims[d].block || rng.chance(1, 2)) looped.push_back(static_cast<int>(d));
    if (looped.empty()) looped.push_back(0);
    // Random loop order.
    for (std::size_t i = looped.size(); i > 1; --i)
      std::swap(looped[i - 1], looped[static_cast<std::size_t>(rng.pick(0, static_cast<int>(i) - 1))]);

    Env env;
    std::vector<std::string> loop_of_dim(fam_dims.size());
    struct LoopInfo {
      std::string var;
      Subscript lo, hi;
      int dim;
    };
    std::vector<LoopInfo> loops;
    for (std::size_t li = 0; li < looped.size(); ++li) {
      const int d = looped[li];
      const int ext = fam_dims[static_cast<std::size_t>(d)].extent;
      const int m = std::min(max_off, (ext - 1) / 2);
      const std::string v = fresh_var();
      LoopInfo info{v, Subscript::constant(m), Subscript::constant(ext - 1 - m), d};
      env[v] = VarRange{m, ext - 1 - m};
      // Triangular inner bound: hi = outer var (trip count may be zero for
      // small outer values — exercises empty local iteration sets).
      if (li > 0 && opt.allow_triangular && rng.chance(1, 6)) {
        const LoopInfo& outer = loops[static_cast<std::size_t>(rng.pick(0, static_cast<int>(li) - 1))];
        const long outer_hi = env[outer.var].hi;
        if (outer_hi <= ext - 1 - m) {
          info.hi = Subscript::var(outer.var);
          env[v] = VarRange{m, outer_hi};
        }
      }
      loop_of_dim[static_cast<std::size_t>(d)] = v;
      loops.push_back(std::move(info));
    }

    // Read pool: the family, the misaligned array, and the temps.
    std::vector<Array*> pool = family;
    if (misaligned) pool.push_back(misaligned);

    std::vector<StmtPtr> body;
    const int nstmts = rng.pick(1, 3);
    bool lhs_shifted = false;
    std::vector<const Array*> written, read;
    for (int s = 0; s < nstmts; ++s) {
      Array* lhs_arr = rng.choice(family);
      Ref lhs;
      lhs.array = lhs_arr;
      for (std::size_t d = 0; d < lhs_arr->extents.size(); ++d) {
        const int ext = lhs_arr->extents[d];
        const std::string& v = loop_of_dim[d];
        if (v.empty()) {
          lhs.subs.push_back(Subscript::constant(rng.pick(0, ext - 1)));
          continue;
        }
        // Occasional shifted write: a non-owner-computes store that forces
        // write-back communication.
        if (max_off > 0 && rng.chance(1, 6)) {
          const long off = rng.pick(-max_off, max_off);
          if (off != 0 && fits(env, v, off, ext)) {
            lhs.subs.push_back(Subscript::var(v, 1, off));
            lhs_shifted = true;
            continue;
          }
        }
        lhs.subs.push_back(Subscript::var(v));
      }
      std::vector<Ref> rhs;
      const int nrhs = rng.pick(1, 3);
      for (int t = 0; t < nrhs; ++t) {
        if (!temps.empty() && rng.chance(1, 6)) {
          const Temp& tm = rng.choice(temps);
          Ref r;
          r.array = tm.array;
          const std::string& v = loop_of_dim[static_cast<std::size_t>(tm.fam_dim)];
          r.subs.push_back(v.empty() ? Subscript::constant(rng.pick(0, tm.array->extents[0] - 1))
                                     : sub(env, v, tm.array->extents[0], max_off));
          rhs.push_back(std::move(r));
          read.push_back(tm.array);
        } else {
          Array* a = rng.choice(pool);
          rhs.push_back(fam_ref(env, a, loop_of_dim, max_off));
          read.push_back(a);
        }
      }
      written.push_back(lhs_arr);
      const double cst = rng.chance(1, 3) ? rng.pick(-3, 3) : 0;
      body.push_back(hpf::make_assign(std::move(lhs), std::move(rhs), cst));
    }

    // INDEPENDENT only where it provably holds: identity writes (disjoint
    // per iteration) and no array both written and read in the nest.
    bool indep = !lhs_shifted;
    for (const Array* w : written)
      for (const Array* r : read) indep = indep && w != r;

    StmtPtr nest;
    for (std::size_t li = loops.size(); li-- > 0;) {
      std::vector<StmtPtr> b;
      if (nest)
        b.push_back(std::move(nest));
      else
        b = std::move(body);
      nest = hpf::make_loop(loops[li].var, loops[li].lo, loops[li].hi, std::move(b));
    }
    if (indep && rng.chance(1, 2)) nest->loop().independent = true;
    return nest;
  }

  /// Figure 4.1: INDEPENDENT outer loop with a NEW privatizable temp — the
  /// temp is defined over its full extent from a distributed source, then
  /// read at -1/0/+1 offsets into a distributed target.
  StmtPtr privatizable_nest() {
    const Temp& tm = rng.choice(temps);
    const int dj = tm.fam_dim;
    // Outer loop dim: any other family dim.
    std::vector<int> others;
    for (std::size_t d = 0; d < fam_dims.size(); ++d)
      if (static_cast<int>(d) != dj) others.push_back(static_cast<int>(d));
    const int dk = rng.choice(others);
    const int ek = fam_dims[static_cast<std::size_t>(dk)].extent;
    const int et = tm.array->extents[0];

    Array* src = rng.choice(family);
    Array* dst = rng.choice(family);
    if (family.size() > 1)
      while (dst == src) dst = rng.choice(family);

    const std::string k = fresh_var();
    const std::string j = fresh_var();
    const std::string j2 = fresh_var();
    std::vector<int> unlooped(fam_dims.size());
    for (std::size_t d = 0; d < fam_dims.size(); ++d)
      unlooped[d] = rng.pick(0, fam_dims[d].extent - 1);

    auto slice_ref = [&](Array* a, const std::string& jvar) {
      std::vector<std::string> lod(fam_dims.size());
      lod[static_cast<std::size_t>(dj)] = jvar;
      lod[static_cast<std::size_t>(dk)] = k;
      return fam_ref_identity(a, lod, unlooped);
    };

    // def loop: w(j) = src(j-slice)
    Ref def_lhs;
    def_lhs.array = tm.array;
    def_lhs.subs.push_back(Subscript::var(j));
    std::vector<StmtPtr> def_body;
    def_body.push_back(hpf::make_assign(std::move(def_lhs), {slice_ref(src, j)}, 0.0));
    StmtPtr def_loop = hpf::make_loop(j, Subscript::constant(0), Subscript::constant(et - 1),
                                      std::move(def_body));

    // use loop: dst(j2-slice) = w(j2-1) + w(j2) + w(j2+1)
    auto temp_ref = [&](long off) {
      Ref r;
      r.array = tm.array;
      r.subs.push_back(Subscript::var(j2, 1, off));
      return r;
    };
    std::vector<Ref> use_rhs;
    use_rhs.push_back(temp_ref(-1));
    if (rng.chance(1, 2)) use_rhs.push_back(temp_ref(0));
    use_rhs.push_back(temp_ref(1));
    std::vector<StmtPtr> use_body;
    use_body.push_back(hpf::make_assign(slice_ref(dst, j2), std::move(use_rhs),
                                        rng.chance(1, 2) ? rng.pick(-2, 2) : 0));
    StmtPtr use_loop = hpf::make_loop(j2, Subscript::constant(1), Subscript::constant(et - 2),
                                      std::move(use_body));

    std::vector<StmtPtr> outer_body;
    outer_body.push_back(std::move(def_loop));
    outer_body.push_back(std::move(use_loop));
    const int mo = rng.pick(0, 1);
    StmtPtr outer = hpf::make_loop(k, Subscript::constant(mo),
                                   Subscript::constant(ek - 1 - mo), std::move(outer_body));
    outer->loop().independent = true;
    outer->loop().new_vars.push_back(tm.array->name);
    return outer;
  }

  /// Figure 4.2: LOCALIZE'd reciprocal family — pointwise definitions from
  /// one source, stencil uses into a target, wrapped in a one-trip
  /// INDEPENDENT loop carrying the LOCALIZE directive.
  StmtPtr localize_nest() {
    // S = source, R = localized middles, Z = target.
    Array* s_arr = family.front();
    Array* z_arr = family.back();
    std::vector<Array*> recips(family.begin() + 1, family.end() - 1);
    if (recips.size() > 2) recips.resize(2);  // keep the nest small

    std::vector<int> unlooped(fam_dims.size());
    for (std::size_t d = 0; d < fam_dims.size(); ++d)
      unlooped[d] = rng.pick(0, fam_dims[d].extent - 1);
    std::vector<int> block_dims;
    for (std::size_t d = 0; d < fam_dims.size(); ++d)
      if (fam_dims[d].block) block_dims.push_back(static_cast<int>(d));

    // Pointwise definition nest over the block dims, full range.
    std::vector<std::string> def_vars(fam_dims.size());
    for (int d : block_dims) def_vars[static_cast<std::size_t>(d)] = fresh_var();
    std::vector<StmtPtr> def_body;
    for (std::size_t i = 0; i < recips.size(); ++i)
      def_body.push_back(hpf::make_assign(fam_ref_identity(recips[i], def_vars, unlooped),
                                          {fam_ref_identity(s_arr, def_vars, unlooped)},
                                          static_cast<double>(i + 1)));
    StmtPtr def_nest = std::move(def_body.front());
    if (def_body.size() > 1) {
      std::vector<StmtPtr> seq;
      seq.push_back(std::move(def_nest));
      for (std::size_t i = 1; i < def_body.size(); ++i) seq.push_back(std::move(def_body[i]));
      def_nest = nullptr;
      // (re-wrap below builds the loops around the whole sequence)
      def_body = std::move(seq);
    } else {
      def_body.clear();
      def_body.push_back(std::move(def_nest));
      def_nest = nullptr;
    }
    for (std::size_t bi = block_dims.size(); bi-- > 0;) {
      const int d = block_dims[bi];
      const int ext = fam_dims[static_cast<std::size_t>(d)].extent;
      std::vector<StmtPtr> b = std::move(def_body);
      def_body.clear();
      def_body.push_back(hpf::make_loop(def_vars[static_cast<std::size_t>(d)],
                                        Subscript::constant(0), Subscript::constant(ext - 1),
                                        std::move(b)));
    }

    // Stencil use nest over the interior.
    std::vector<std::string> use_vars(fam_dims.size());
    for (int d : block_dims) use_vars[static_cast<std::size_t>(d)] = fresh_var();
    std::vector<Ref> use_rhs;
    for (Array* r : recips) {
      const int d = rng.choice(block_dims);
      Ref ref = fam_ref_identity(r, use_vars, unlooped);
      ref.subs[static_cast<std::size_t>(d)] =
          Subscript::var(use_vars[static_cast<std::size_t>(d)], 1, rng.chance(1, 2) ? 1 : -1);
      use_rhs.push_back(std::move(ref));
      if (rng.chance(1, 2)) use_rhs.push_back(fam_ref_identity(r, use_vars, unlooped));
    }
    std::vector<StmtPtr> use_body;
    use_body.push_back(
        hpf::make_assign(fam_ref_identity(z_arr, use_vars, unlooped), std::move(use_rhs), 0.0));
    for (std::size_t bi = block_dims.size(); bi-- > 0;) {
      const int d = block_dims[bi];
      const int ext = fam_dims[static_cast<std::size_t>(d)].extent;
      std::vector<StmtPtr> b = std::move(use_body);
      use_body.clear();
      use_body.push_back(hpf::make_loop(use_vars[static_cast<std::size_t>(d)],
                                        Subscript::constant(1), Subscript::constant(ext - 2),
                                        std::move(b)));
    }

    std::vector<StmtPtr> outer_body;
    outer_body.push_back(std::move(def_body.front()));
    outer_body.push_back(std::move(use_body.front()));
    StmtPtr outer = hpf::make_loop(fresh_var(), Subscript::constant(1), Subscript::constant(1),
                                   std::move(outer_body));
    outer->loop().independent = true;
    for (Array* r : recips) outer->loop().localize_vars.push_back(r->name);
    return outer;
  }

  /// Cross-processor recurrence (a true pipeline): x(i) = x(i-1) along a
  /// block dim, other dims fixed.
  StmtPtr recurrence_nest() {
    Array* x = rng.choice(family);
    std::vector<int> block_dims;
    for (std::size_t d = 0; d < fam_dims.size(); ++d)
      if (fam_dims[d].block) block_dims.push_back(static_cast<int>(d));
    const int dr = rng.choice(block_dims);
    const int ext = fam_dims[static_cast<std::size_t>(dr)].extent;
    const std::string v = fresh_var();

    Ref lhs, rhs;
    lhs.array = rhs.array = x;
    for (std::size_t d = 0; d < fam_dims.size(); ++d) {
      if (static_cast<int>(d) == dr) {
        lhs.subs.push_back(Subscript::var(v));
        rhs.subs.push_back(Subscript::var(v, 1, -1));
      } else {
        const int c = rng.pick(0, fam_dims[d].extent - 1);
        lhs.subs.push_back(Subscript::constant(c));
        rhs.subs.push_back(Subscript::constant(c));
      }
    }
    std::vector<StmtPtr> body;
    body.push_back(hpf::make_assign(std::move(lhs), {std::move(rhs)},
                                    rng.chance(1, 2) ? 1 : 0));
    return hpf::make_loop(v, Subscript::constant(1), Subscript::constant(ext - 1),
                          std::move(body));
  }

  // ---------------------------------------------------------- assembly

  GeneratedCase run(std::uint64_t seed) {
    make_decls();
    hpf::Procedure* main_proc = prog.add_procedure("main");

    std::vector<int> kinds;  // weighted kind pool
    kinds.insert(kinds.end(), 4, 0);  // stencil
    if (!temps.empty() && fam_dims.size() >= 2 && opt.allow_new)
      kinds.insert(kinds.end(), 2, 1);  // Fig 4.1
    if (family.size() >= 3 && opt.allow_localize) kinds.insert(kinds.end(), 2, 2);  // Fig 4.2
    if (opt.allow_recurrence) kinds.insert(kinds.end(), 1, 3);

    const int nnests = rng.pick(1, std::max(1, opt.max_nests));
    for (int n = 0; n < nnests; ++n) {
      switch (rng.choice(kinds)) {
        case 1:
          main_proc->body.push_back(privatizable_nest());
          break;
        case 2:
          main_proc->body.push_back(localize_nest());
          break;
        case 3:
          main_proc->body.push_back(recurrence_nest());
          break;
        default:
          main_proc->body.push_back(stencil_nest());
      }
    }
    // Occasionally a bare top-level assignment (single-instance statement).
    if (rng.chance(1, 8)) {
      Array* a = rng.choice(family);
      Array* b = rng.choice(family);
      Ref lhs, rhs;
      lhs.array = a;
      rhs.array = b;
      for (int e : a->extents) lhs.subs.push_back(Subscript::constant(rng.pick(0, e - 1)));
      for (int e : b->extents) rhs.subs.push_back(Subscript::constant(rng.pick(0, e - 1)));
      main_proc->body.push_back(hpf::make_assign(std::move(lhs), {std::move(rhs)}, 1));
    }

    prog.number_statements();
    return GeneratedCase{seed, hpf::to_source(prog)};
  }
};

}  // namespace

GeneratedCase generate(std::uint64_t seed, const GenOptions& opt) {
  Gen gen(seed, opt);
  return gen.run(seed);
}

std::vector<std::vector<int>> candidate_grid_shapes(int grid_rank) {
  require(grid_rank == 1 || grid_rank == 2, "fuzz",
          "generated grids are rank 1 or 2, got rank " + std::to_string(grid_rank));
  if (grid_rank == 1) return {{2}, {4}, {3}, {5}, {6}};
  return {{2, 2}, {1, 3}, {3, 2}, {2, 1}, {1, 4}, {2, 3}};
}

}  // namespace dhpf::fuzz
