#include "fuzz/diff.hpp"

#include "lint/lint.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>
#include <vector>

#include "codegen/spmd.hpp"
#include "comm/comm.hpp"
#include "cp/select.hpp"
#include "fuzz/rng.hpp"
#include "hpf/parser.hpp"
#include "model/model.hpp"
#include "sim/machine.hpp"
#include "support/diagnostics.hpp"
#include "tune/tune.hpp"
#include "verify/plan.hpp"
#include "verify/verify.hpp"

namespace dhpf::fuzz {

const char* to_string(FailKind k) {
  switch (k) {
    case FailKind::None: return "none";
    case FailKind::ParseError: return "parse-error";
    case FailKind::SerialError: return "serial-error";
    case FailKind::CompileError: return "compile-error";
    case FailKind::VerifyFail: return "verify-fail";
    case FailKind::RunError: return "run-error";
    case FailKind::SimMismatch: return "sim-mismatch";
    case FailKind::MpMismatch: return "mp-mismatch";
    case FailKind::ShmMismatch: return "shm-mismatch";
    case FailKind::ModelCommMismatch: return "model-comm-mismatch";
    case FailKind::LintFalsePositive: return "lint-false-positive";
  }
  return "?";
}

std::string Failure::signature() const {
  std::string s = fuzz::to_string(kind);
  if (!variant.empty()) s += " | " + variant;
  if (!shape.empty()) s += " | " + shape;
  return s;
}

std::string Failure::to_string() const {
  std::string s = signature();
  if (!detail.empty()) s += "\n  " + detail;
  return s;
}

namespace {

bool bit_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

std::string shape_string(const hpf::ProcGrid& g) {
  std::string s = g.name + "(";
  for (std::size_t i = 0; i < g.extents.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(g.extents[i]);
  }
  return s + ")";
}

/// First bitwise difference between the SPMD owner copies and the serial
/// oracle over the distributed arrays, rendered as a witness ("" if none).
std::string first_difference(const hpf::Program& prog, const codegen::Store& serial,
                             const codegen::Store& gathered) {
  for (const auto& a : prog.arrays()) {
    if (!a->distributed()) continue;
    const auto si = serial.find(a.get());
    const auto gi = gathered.find(a.get());
    if (si == serial.end() || gi == gathered.end()) return a->name + ": missing store";
    for (std::size_t f = 0; f < si->second.size(); ++f) {
      if (bit_equal(si->second[f], gi->second[f])) continue;
      std::ostringstream os;
      os.precision(17);
      os << a->name << "[flat " << f << "]: serial=" << si->second[f]
         << " spmd=" << gi->second[f];
      return os.str();
    }
  }
  return "";
}

/// Deterministic pick of `n` distinct variant indices (always containing the
/// default variant).
std::vector<std::size_t> pick_variants(const std::vector<tune::VariantSpec>& variants,
                                       std::size_t n, Rng& rng) {
  std::set<std::size_t> chosen;
  for (std::size_t i = 0; i < variants.size(); ++i)
    if (variants[i].is_default) chosen.insert(i);
  while (chosen.size() < n && chosen.size() < variants.size())
    chosen.insert(static_cast<std::size_t>(
        rng.pick(0, static_cast<int>(variants.size()) - 1)));
  return {chosen.begin(), chosen.end()};
}

}  // namespace

DiffOptions corpus_options() {
  DiffOptions opt;
  opt.variants_per_extra_shape = 1 << 20;  // everything
  opt.mp_variants = 3;
  opt.shm_variants = 3;
  return opt;
}

DiffResult run_differential(const std::string& source, std::uint64_t seed,
                            const DiffOptions& opt) {
  DiffResult res;
  auto fail = [&](FailKind kind, std::string variant, std::string shape,
                  std::string detail) {
    res.ok = false;
    res.failure = Failure{kind, std::move(variant), std::move(shape), std::move(detail)};
    return res;
  };

  // Shape list: the program's own grid shape first, then distinct candidates.
  std::vector<std::vector<int>> shapes;
  {
    hpf::Program probe;
    try {
      probe = hpf::parse(source);
    } catch (const dhpf::Error& e) {
      return fail(FailKind::ParseError, "", "", e.what());
    }
    require(!probe.grids().empty(), "fuzz", "program has no processor grid");
    const auto& own = probe.grids().front()->extents;
    shapes.push_back(own);
    for (const auto& cand : candidate_grid_shapes(static_cast<int>(own.size()))) {
      if (static_cast<int>(shapes.size()) >= opt.shapes) break;
      if (cand != own) shapes.push_back(cand);
    }
  }

  const std::vector<tune::VariantSpec> variants = tune::enumerate_variants();
  const sim::Machine machine = sim::Machine::sp2();

  for (std::size_t si = 0; si < shapes.size(); ++si) {
    // Fresh parse per shape: result stores are keyed by Array*, so the
    // serial oracle and every SPMD run of a shape must share one Program.
    hpf::Program prog = hpf::parse(source);
    prog.grids().front()->extents = shapes[si];
    const std::string shape = shape_string(*prog.grids().front());

    codegen::Store serial;
    try {
      serial = codegen::interpret_serial(prog);
    } catch (const dhpf::Error& e) {
      return fail(FailKind::SerialError, "", shape, e.what());
    }

    if (opt.check_lint) {
      // Error-severity lint findings carry exact witnesses, so any error on
      // a program the serial oracle just executed is a lint false positive.
      const lint::Report lrep = lint::run(prog);
      if (lrep.errors() > 0) {
        std::string detail;
        for (const auto& d : lrep.diagnostics) {
          if (d.severity != lint::Severity::Error) continue;
          detail = d.to_string();
          break;
        }
        return fail(FailKind::LintFalsePositive, "", shape, detail);
      }
    }

    // Variant sub-sampling is seeded per (case, shape) — deterministic, and
    // rotating with the case seed so a campaign covers the full cross
    // product on every shape.
    Rng shape_rng(seed ^ (0x9e3779b97f4a7c15ull * (si + 1)));
    std::vector<std::size_t> indices;
    if (si == 0) {
      for (std::size_t v = 0; v < variants.size(); ++v) indices.push_back(v);
    } else {
      indices = pick_variants(variants,
                              static_cast<std::size_t>(opt.variants_per_extra_shape),
                              shape_rng);
    }
    const std::vector<std::size_t> mp_picks =
        opt.run_mp
            ? pick_variants(variants, static_cast<std::size_t>(opt.mp_variants), shape_rng)
            : std::vector<std::size_t>{};
    // Drawn after mp_picks from the same stream: an independent rotation, so
    // shm coverage drifts across different variants than mp over a campaign.
    const std::vector<std::size_t> shm_picks =
        opt.run_shm
            ? pick_variants(variants, static_cast<std::size_t>(opt.shm_variants), shape_rng)
            : std::vector<std::size_t>{};

    for (std::size_t vi : indices) {
      const tune::VariantSpec& variant = variants[vi];
      ++res.plans_checked;

      cp::CpResult cps;
      comm::CommPlan plan;
      try {
        cps = cp::select_cps(prog, variant.sopt);
        plan = comm::generate_comm(prog, cps, variant.copt);
      } catch (const dhpf::Error& e) {
        return fail(FailKind::CompileError, variant.name, shape, e.what());
      }

      // Static verification of every compiled plan.
      {
        verify::CompiledPlan bound = verify::bind(prog, cps, plan);
        const verify::Report report = verify::check(bound);
        if (!report.clean()) {
          std::string detail;
          for (const auto& d : report.diagnostics)
            if (d.severity == verify::Severity::Error) {
              detail = d.to_string();
              break;
            }
          return fail(FailKind::VerifyFail, variant.name, shape, detail);
        }
      }

      // Simulator run, bit-for-bit against the serial oracle.
      codegen::SpmdOptions xopt;
      xopt.backend = exec::Backend::Sim;
      xopt.verify = false;  // the bitwise comparison below subsumes it
      xopt.collect_result = true;
      codegen::SpmdResult sim_run;
      try {
        sim_run = codegen::run_spmd(prog, cps, plan, machine, xopt);
      } catch (const dhpf::Error& e) {
        return fail(FailKind::RunError, variant.name, shape, e.what());
      }
      ++res.sim_runs;
      if (std::string diff = first_difference(prog, serial, sim_run.gathered);
          !diff.empty())
        return fail(FailKind::SimMismatch, variant.name, shape, diff);

      // Model cross-check: predicted comm volume must equal the simulator's
      // measured volume exactly.
      if (opt.check_model) {
        const model::Prediction pred =
            model::predict(prog, cps, plan, machine, xopt.flops_per_instance);
        if (pred.messages != sim_run.stats.messages || pred.bytes != sim_run.stats.bytes) {
          std::ostringstream os;
          os << "model messages=" << pred.messages << " bytes=" << pred.bytes
             << " vs sim messages=" << sim_run.stats.messages
             << " bytes=" << sim_run.stats.bytes;
          return fail(FailKind::ModelCommMismatch, variant.name, shape, os.str());
        }
      }

      // mp backend on the seeded rotation.
      if (opt.run_mp &&
          std::find(mp_picks.begin(), mp_picks.end(), vi) != mp_picks.end()) {
        codegen::SpmdOptions mopt = xopt;
        mopt.backend = exec::Backend::Mp;
        codegen::SpmdResult mp_run;
        try {
          mp_run = codegen::run_spmd(prog, cps, plan, machine, mopt);
        } catch (const dhpf::Error& e) {
          return fail(FailKind::RunError, variant.name + " [mp]", shape, e.what());
        }
        ++res.mp_runs;
        if (std::string diff = first_difference(prog, serial, mp_run.gathered);
            !diff.empty())
          return fail(FailKind::MpMismatch, variant.name, shape, diff);
      }

      // shm backend on its own seeded rotation: real threads over one shared
      // address space, still bit-for-bit against the serial oracle.
      if (opt.run_shm &&
          std::find(shm_picks.begin(), shm_picks.end(), vi) != shm_picks.end()) {
        codegen::SpmdOptions sopt_ = xopt;
        sopt_.backend = exec::Backend::Shm;
        codegen::SpmdResult shm_run;
        try {
          shm_run = codegen::run_spmd(prog, cps, plan, machine, sopt_);
        } catch (const dhpf::Error& e) {
          return fail(FailKind::RunError, variant.name + " [shm]", shape, e.what());
        }
        ++res.shm_runs;
        if (std::string diff = first_difference(prog, serial, shm_run.gathered);
            !diff.empty())
          return fail(FailKind::ShmMismatch, variant.name, shape, diff);
        // The model's shm aggregates are exact by construction: barrier
        // episodes and shared-read bytes must match the runtime's counters.
        if (opt.check_model) {
          const model::Prediction pred =
              model::predict(prog, cps, plan, machine, xopt.flops_per_instance);
          if (pred.barrier_episodes != shm_run.shm_stats.barriers ||
              static_cast<std::size_t>(pred.bytes) !=
                  shm_run.shm_stats.shared_read_bytes) {
            std::ostringstream os;
            os << "model barriers=" << pred.barrier_episodes
               << " shared bytes=" << pred.bytes
               << " vs shm barriers=" << shm_run.shm_stats.barriers
               << " shared bytes=" << shm_run.shm_stats.shared_read_bytes;
            return fail(FailKind::ModelCommMismatch, variant.name + " [shm]", shape,
                        os.str());
          }
        }
      }
    }
  }
  return res;
}

}  // namespace dhpf::fuzz
