#include "fuzz/minimize.hpp"

#include <cctype>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "hpf/ir.hpp"
#include "hpf/parser.hpp"
#include "hpf/printer.hpp"
#include "support/diagnostics.hpp"

namespace dhpf::fuzz {

namespace {

using hpf::StmtPtr;

enum class EditKind {
  DropStmt,       ///< remove one statement subtree
  ClearAttrs,     ///< strip independent/new/localize from one loop
  DropRhsTerm,    ///< remove one rhs term (assigns with >= 2 terms)
  HalveLoop,      ///< hi = lo + (hi - lo) / 2 on constant-bound loops
  ZeroCst,        ///< set a nonzero statement constant to 0
  DropArrayLine,  ///< delete an unused `array ...` declaration line
  DropLine,       ///< delete any line (unparseable inputs only)
};

struct Edit {
  EditKind kind;
  std::size_t a = 0;  ///< pass-specific index (statement / loop / line)
  std::size_t b = 0;  ///< secondary index (rhs term)
};

/// Pre-order statement sites across all procedures (owning body + slot).
void collect_sites(std::vector<StmtPtr>& body,
                   std::vector<std::pair<std::vector<StmtPtr>*, std::size_t>>& out) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    out.push_back({&body, i});
    if (body[i]->is_loop()) collect_sites(body[i]->loop().body, out);
  }
}

void collect_loops(std::vector<StmtPtr>& body, std::vector<hpf::Loop*>& out) {
  for (auto& s : body)
    if (s->is_loop()) {
      out.push_back(&s->loop());
      collect_loops(s->loop().body, out);
    }
}

void collect_assigns(std::vector<StmtPtr>& body, std::vector<hpf::Assign*>& out) {
  for (auto& s : body) {
    if (s->is_assign()) out.push_back(&s->assign());
    if (s->is_loop()) collect_assigns(s->loop().body, out);
  }
}

void prune_empty_loops(std::vector<StmtPtr>& body) {
  for (auto it = body.begin(); it != body.end();) {
    if ((*it)->is_loop()) {
      prune_empty_loops((*it)->loop().body);
      if ((*it)->loop().body.empty()) {
        it = body.erase(it);
        continue;
      }
    }
    ++it;
  }
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Does `name` occur as a standalone identifier anywhere in `text`?
bool mentions_ident(const std::string& text, const std::string& name) {
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  for (std::size_t pos = text.find(name); pos != std::string::npos;
       pos = text.find(name, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= text.size() || !is_ident(text[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

/// Declared name of an `array NAME(...)` line ("" if not an array line).
std::string array_line_name(const std::string& line) {
  std::size_t p = line.find_first_not_of(" \t");
  if (p == std::string::npos || line.compare(p, 6, "array ") != 0) return "";
  p += 6;
  while (p < line.size() && line[p] == ' ') ++p;
  std::size_t q = p;
  while (q < line.size() && line[q] != '(' && line[q] != ' ') ++q;
  return line.substr(p, q - p);
}

std::vector<Edit> enumerate_edits(const std::string& src) {
  std::vector<Edit> edits;
  bool parses = true;
  hpf::Program prog;
  try {
    prog = hpf::parse(src);
  } catch (const dhpf::Error&) {
    parses = false;
  }

  if (parses) {
    std::vector<std::pair<std::vector<StmtPtr>*, std::size_t>> sites;
    std::vector<hpf::Loop*> loops;
    std::vector<hpf::Assign*> assigns;
    for (const auto& proc : prog.procedures()) {
      collect_sites(proc->body, sites);
      collect_loops(proc->body, loops);
      collect_assigns(proc->body, assigns);
    }
    for (std::size_t i = 0; i < sites.size(); ++i)
      edits.push_back({EditKind::DropStmt, i, 0});
    for (std::size_t i = 0; i < loops.size(); ++i)
      if (loops[i]->independent || !loops[i]->new_vars.empty() ||
          !loops[i]->localize_vars.empty())
        edits.push_back({EditKind::ClearAttrs, i, 0});
    for (std::size_t i = 0; i < assigns.size(); ++i)
      for (std::size_t t = 0; assigns[i]->rhs.size() > 1 && t < assigns[i]->rhs.size(); ++t)
        edits.push_back({EditKind::DropRhsTerm, i, t});
    for (std::size_t i = 0; i < loops.size(); ++i)
      if (loops[i]->lo.coef.empty() && loops[i]->hi.coef.empty() &&
          loops[i]->hi.cst > loops[i]->lo.cst)
        edits.push_back({EditKind::HalveLoop, i, 0});
    for (std::size_t i = 0; i < assigns.size(); ++i)
      if (assigns[i]->cst != 0.0) edits.push_back({EditKind::ZeroCst, i, 0});
    const std::vector<std::string> lines = split_lines(src);
    for (std::size_t i = 0; i < lines.size(); ++i)
      if (!array_line_name(lines[i]).empty())
        edits.push_back({EditKind::DropArrayLine, i, 0});
  } else {
    const std::vector<std::string> lines = split_lines(src);
    for (std::size_t i = 0; i < lines.size(); ++i)
      if (!lines[i].empty()) edits.push_back({EditKind::DropLine, i, 0});
  }
  return edits;
}

/// Apply one edit; returns "" when the edit is inapplicable / a no-op.
/// May throw dhpf::Error (e.g. the printer rejecting an edited program) —
/// the caller treats that as "candidate rejected".
std::string apply_edit(const std::string& src, const Edit& e) {
  if (e.kind == EditKind::DropArrayLine || e.kind == EditKind::DropLine) {
    std::vector<std::string> lines = split_lines(src);
    if (e.a >= lines.size()) return "";
    if (e.kind == EditKind::DropArrayLine) {
      const std::string name = array_line_name(lines[e.a]);
      if (name.empty()) return "";
      std::string rest;
      for (std::size_t i = 0; i < lines.size(); ++i)
        if (i != e.a) rest += lines[i] + "\n";
      if (mentions_ident(rest, name)) return "";  // still referenced
      lines.erase(lines.begin() + static_cast<long>(e.a));
      return join_lines(lines);
    }
    lines.erase(lines.begin() + static_cast<long>(e.a));
    return join_lines(lines);
  }

  hpf::Program prog = hpf::parse(src);
  std::vector<std::pair<std::vector<StmtPtr>*, std::size_t>> sites;
  std::vector<hpf::Loop*> loops;
  std::vector<hpf::Assign*> assigns;
  for (const auto& proc : prog.procedures()) {
    collect_sites(proc->body, sites);
    collect_loops(proc->body, loops);
    collect_assigns(proc->body, assigns);
  }

  switch (e.kind) {
    case EditKind::DropStmt: {
      if (e.a >= sites.size()) return "";
      auto [body, slot] = sites[e.a];
      body->erase(body->begin() + static_cast<long>(slot));
      for (const auto& proc : prog.procedures()) prune_empty_loops(proc->body);
      break;
    }
    case EditKind::ClearAttrs: {
      if (e.a >= loops.size()) return "";
      loops[e.a]->independent = false;
      loops[e.a]->new_vars.clear();
      loops[e.a]->localize_vars.clear();
      break;
    }
    case EditKind::DropRhsTerm: {
      if (e.a >= assigns.size() || assigns[e.a]->rhs.size() <= 1 ||
          e.b >= assigns[e.a]->rhs.size())
        return "";
      assigns[e.a]->rhs.erase(assigns[e.a]->rhs.begin() + static_cast<long>(e.b));
      break;
    }
    case EditKind::HalveLoop: {
      if (e.a >= loops.size()) return "";
      hpf::Loop* l = loops[e.a];
      if (!l->lo.coef.empty() || !l->hi.coef.empty() || l->hi.cst <= l->lo.cst) return "";
      l->hi.cst = l->lo.cst + (l->hi.cst - l->lo.cst) / 2;
      break;
    }
    case EditKind::ZeroCst: {
      if (e.a >= assigns.size() || assigns[e.a]->cst == 0.0) return "";
      assigns[e.a]->cst = 0.0;
      break;
    }
    default:
      return "";
  }
  prog.number_statements();
  return hpf::to_source(prog);
}

}  // namespace

MinimizeResult minimize(const std::string& source, std::uint64_t seed,
                        const MinimizeOptions& opt) {
  MinimizeResult res;
  const DiffResult first = run_differential(source, seed, opt.diff);
  require(!first.ok, "fuzz", "minimize: program passes the differential check");
  res.signature = first.failure.signature();
  res.source = source;

  bool progress = true;
  while (progress && res.attempts < opt.max_attempts) {
    progress = false;
    for (const Edit& e : enumerate_edits(res.source)) {
      if (res.attempts >= opt.max_attempts) break;
      std::string cand;
      try {
        cand = apply_edit(res.source, e);
      } catch (const dhpf::Error&) {
        continue;
      }
      if (cand.empty() || cand == res.source) continue;
      ++res.attempts;
      const DiffResult d = run_differential(cand, seed, opt.diff);
      if (!d.ok && d.failure.signature() == res.signature) {
        res.source = std::move(cand);
        ++res.accepted;
        progress = true;
        break;  // restart the sweep against the smaller program
      }
    }
  }
  return res;
}

}  // namespace dhpf::fuzz
