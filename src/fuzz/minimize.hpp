// Delta-debugging minimizer: shrink a failing program while preserving its
// failure signature (diff.hpp's kind + variant + shape).
//
// Reduction is greedy first-fit over structural passes on the re-parsed IR
// — drop a statement (subtree), clear directive attributes, drop a rhs
// term, halve a constant loop range, zero a statement constant — plus two
// text-level passes: drop an unused array declaration line, and (only when
// the input does not parse, i.e. a parser-fuzz crash reproducer) drop any
// line. Every candidate is re-checked with run_differential and accepted
// only if it still fails with the identical signature, so the result is a
// valid minimal reproducer by construction. Reduction is deterministic:
// same (source, seed, options) in, same minimized program out.
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/diff.hpp"

namespace dhpf::fuzz {

struct MinimizeOptions {
  DiffOptions diff;       ///< how candidates are re-checked
  int max_attempts = 400; ///< budget of differential re-runs
};

struct MinimizeResult {
  std::string source;     ///< the minimized program
  std::string signature;  ///< failure signature preserved throughout
  int attempts = 0;       ///< differential re-runs spent
  int accepted = 0;       ///< reductions that kept the signature
};

/// Shrink `source`. Throws dhpf::Error if `source` does not fail the
/// differential check in the first place (nothing to minimize).
MinimizeResult minimize(const std::string& source, std::uint64_t seed,
                        const MinimizeOptions& opt = {});

}  // namespace dhpf::fuzz
