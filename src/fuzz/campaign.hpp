// Campaign orchestration: generate -> differentially check -> (on failure)
// minimize -> write reproducers, over N seeded cases. This is what
// `dhpfc --fuzz N` runs and what the slow ctest target drives.
//
// Case seeds are derived from the campaign seed by index (case_seed), so a
// campaign is deterministic end to end and any failing case can be re-run
// standalone from its reported seed. Reports are deterministic too — the
// same (seed, count, options) produce byte-identical to_string() output,
// which is what the determinism satellite test pins.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/diff.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/minimize.hpp"

namespace dhpf::fuzz {

struct CampaignOptions {
  std::uint64_t seed = 1;
  int count = 100;
  GenOptions gen;
  DiffOptions diff;
  bool minimize_failures = true;
  int minimize_attempts = 400;
  std::string out_dir;          ///< write reproducers here ("" = don't)
  std::ostream* log = nullptr;  ///< progress stream (nullptr = silent)
  int log_every = 0;            ///< progress line period in cases (0 = off)
};

struct CaseFailure {
  std::uint64_t case_seed = 0;
  int index = 0;  ///< case number within the campaign
  Failure failure;
  std::string source;     ///< the generated program
  std::string minimized;  ///< shrunk reproducer ("" if minimization off)
  std::string path;       ///< reproducer file written ("" if out_dir empty)
};

struct CampaignReport {
  std::uint64_t seed = 0;
  int cases = 0;
  long plans_checked = 0;
  long sim_runs = 0;
  long mp_runs = 0;
  long shm_runs = 0;
  std::vector<CaseFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Seed of case `index` in a campaign (exposed so a reported case can be
/// regenerated without re-running the campaign).
std::uint64_t case_seed(std::uint64_t campaign_seed, int index);

CampaignReport run_campaign(const CampaignOptions& opt);

/// Replay every .hpf file under `dir` (sorted by name) through the
/// differential check — the regression-corpus gate ctest and
/// scripts/bench_smoke.sh run. Per-file seeds hash the file name, so replay
/// is deterministic and independent of directory enumeration order.
struct ReplayResult {
  std::string path;
  DiffResult diff;
};
std::vector<ReplayResult> replay_corpus(const std::string& dir,
                                        const DiffOptions& opt = corpus_options());

}  // namespace dhpf::fuzz
