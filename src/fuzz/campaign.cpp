#include "fuzz/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "fuzz/rng.hpp"
#include "support/diagnostics.hpp"

namespace dhpf::fuzz {

namespace fs = std::filesystem;

std::uint64_t case_seed(std::uint64_t campaign_seed, int index) {
  Rng r(campaign_seed ^ (0x9e3779b97f4a7c15ull *
                         (static_cast<std::uint64_t>(index) + 1)));
  return r.next_u64();
}

std::string CampaignReport::to_string() const {
  std::ostringstream os;
  os << "fuzz campaign: seed=" << seed << " cases=" << cases
     << " plans=" << plans_checked << " sim-runs=" << sim_runs
     << " mp-runs=" << mp_runs << " shm-runs=" << shm_runs
     << " failures=" << failures.size() << "\n";
  for (const auto& f : failures) {
    os << "case " << f.index << " (seed " << f.case_seed << "): "
       << f.failure.to_string() << "\n";
    if (!f.path.empty()) os << "  reproducer: " << f.path << "\n";
  }
  return os.str();
}

CampaignReport run_campaign(const CampaignOptions& opt) {
  CampaignReport report;
  report.seed = opt.seed;

  if (!opt.out_dir.empty()) fs::create_directories(opt.out_dir);

  for (int i = 0; i < opt.count; ++i) {
    const std::uint64_t cs = case_seed(opt.seed, i);
    const GeneratedCase gen = generate(cs, opt.gen);
    const DiffResult d = run_differential(gen.source, cs, opt.diff);
    ++report.cases;
    report.plans_checked += d.plans_checked;
    report.sim_runs += d.sim_runs;
    report.mp_runs += d.mp_runs;
    report.shm_runs += d.shm_runs;

    if (!d.ok) {
      CaseFailure cf;
      cf.case_seed = cs;
      cf.index = i;
      cf.failure = d.failure;
      cf.source = gen.source;
      if (opt.minimize_failures) {
        MinimizeOptions mo;
        mo.diff = opt.diff;
        mo.max_attempts = opt.minimize_attempts;
        cf.minimized = minimize(gen.source, cs, mo).source;
      }
      if (!opt.out_dir.empty()) {
        const std::string stem = "fail-seed" + std::to_string(cs);
        const fs::path hpf = fs::path(opt.out_dir) / (stem + ".hpf");
        std::ofstream(hpf) << (cf.minimized.empty() ? cf.source : cf.minimized);
        std::ofstream(fs::path(opt.out_dir) / (stem + ".txt"))
            << cf.failure.to_string() << "\n\noriginal program:\n"
            << cf.source;
        cf.path = hpf.string();
      }
      report.failures.push_back(std::move(cf));
    }

    if (opt.log && opt.log_every > 0 && (i + 1) % opt.log_every == 0)
      *opt.log << "fuzz: " << (i + 1) << "/" << opt.count << " cases, "
               << report.plans_checked << " plans, " << report.failures.size()
               << " failures\n";
  }
  return report;
}

std::vector<ReplayResult> replay_corpus(const std::string& dir, const DiffOptions& opt) {
  require(fs::is_directory(dir), "fuzz", "corpus directory not found: " + dir);
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ".hpf")
      paths.push_back(entry.path().string());
  std::sort(paths.begin(), paths.end());

  std::vector<ReplayResult> results;
  for (const auto& path : paths) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    // FNV-1a over the file *name* (not path), so replay seeds survive the
    // corpus moving between checkouts.
    const std::string name = fs::path(path).filename().string();
    std::uint64_t h = 1469598103934665603ull;
    for (char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    results.push_back({path, run_differential(buf.str(), h, opt)});
  }
  return results;
}

}  // namespace dhpf::fuzz
