// Deterministic, platform-independent random source for the fuzzer.
//
// std::mt19937 is specified exactly, but the standard *distributions*
// (uniform_int_distribution et al.) are not — the same seed can generate
// different programs under libstdc++ and libc++, which would break the
// "same --fuzz-seed, byte-identical programs" guarantee and make corpus
// seeds unreproducible across machines. So the fuzzer carries its own
// SplitMix64 core and its own pick/choice helpers with pinned semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "support/diagnostics.hpp"

namespace dhpf::fuzz {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// SplitMix64 step (Steele et al.) — full 64-bit output.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Modulo bias is irrelevant for
  /// the tiny ranges the generator draws from, and keeping it makes the
  /// mapping trivially portable.
  int pick(int lo, int hi) {
    require(lo <= hi, "fuzz", "empty pick range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next_u64() % span);
  }

  /// True with probability num/den.
  bool chance(int num, int den) { return pick(1, den) <= num; }

  /// Uniform element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& xs) {
    require(!xs.empty(), "fuzz", "choice from empty list");
    return xs[static_cast<std::size_t>(pick(0, static_cast<int>(xs.size()) - 1))];
  }

  /// Independent child stream (used to decouple per-case decisions from the
  /// campaign-level stream so adding a draw in one place does not reshuffle
  /// every later case).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

 private:
  std::uint64_t state_;
};

}  // namespace dhpf::fuzz
