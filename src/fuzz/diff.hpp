// Differential conformance driver (the fuzzer's oracle half).
//
// One generated program is checked like this: for each processor-grid shape
// (the generated one plus re-instantiations from candidate_grid_shapes), the
// program is parsed fresh, interpreted serially (the oracle), and compiled
// under a set of optimization-flag variants (the full 48-point cross product
// of tune::enumerate_variants on the first shape, a seeded subset on the
// others). Every compiled plan is
//
//   * statically verified (dhpf::verify — a verifier error is a failure even
//     if execution would happen to produce the right numbers),
//   * cross-checked against the analytic model (dhpf::model predicts the
//     exact message/byte counts the simulator then measures — any
//     disagreement is a failure),
//   * executed on the deterministic simulator and compared BIT-FOR-BIT
//     against the serial oracle (owner copies of every distributed array),
//   * and, for seeded rotations of variants, executed on the real
//     multi-threaded mp and shm backends and compared bit-for-bit as well.
//
// Bit-for-bit is achievable (and therefore demanded) because serial and
// SPMD execution sum rhs terms in the same order, the mp runtime's
// named-source receives are deterministic, and the shm backend's
// barrier-fenced shared reads copy exactly the bytes the message path
// would have carried; see docs/fuzzing.md.
//
// The driver fails fast: the first failure is reported with a structured
// kind + variant + shape signature, which is the currency the minimizer
// (minimize.hpp) preserves while shrinking.
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/generator.hpp"

namespace dhpf::fuzz {

enum class FailKind {
  None,
  ParseError,         ///< hpf::parse rejected the program
  SerialError,        ///< the serial oracle itself threw
  CompileError,       ///< the pipeline threw under some variant
  VerifyFail,         ///< dhpf::verify reported an error on a plan
  RunError,           ///< run_spmd threw (sim or mp)
  SimMismatch,        ///< sim result != serial oracle (bitwise)
  MpMismatch,         ///< mp result != serial oracle (bitwise)
  ShmMismatch,        ///< shm result != serial oracle (bitwise)
  ModelCommMismatch,  ///< model's messages/bytes != simulator's measured
  LintFalsePositive,  ///< dhpf::lint reported an error on a valid program
};

const char* to_string(FailKind k);

struct DiffOptions {
  /// Grid shapes to check (>= 1): the generated shape, then distinct
  /// candidates from candidate_grid_shapes().
  int shapes = 3;
  /// Full 48-variant cross product on the first shape; this many seeded
  /// variants (always including the default) on each further shape.
  int variants_per_extra_shape = 8;
  /// mp-backend runs per (case, shape): the default variant plus seeded
  /// picks, rotating with the case seed so the whole cross product gets mp
  /// coverage across a campaign.
  int mp_variants = 2;
  /// shm-backend runs per (case, shape): an independently seeded rotation,
  /// so mp and shm coverage drift across different variants over a
  /// campaign instead of always shadowing each other.
  int shm_variants = 2;
  bool run_mp = true;
  bool run_shm = true;
  bool check_model = true;
  /// Lint every (program, shape): a generated-valid program must produce
  /// zero error-severity findings (dhpf::lint's witnesses are exact, so an
  /// error on a program whose serial oracle runs is a lint bug).
  bool check_lint = true;
};

/// One structured failure. `signature()` identifies the failure class for
/// the minimizer: a shrunk program must fail the same way to be accepted.
struct Failure {
  FailKind kind = FailKind::None;
  std::string variant;  ///< VariantSpec name; "" when not variant-specific
  std::string shape;    ///< e.g. "P(2,2)"
  std::string detail;   ///< diagnostic text / first differing element

  [[nodiscard]] std::string signature() const;
  [[nodiscard]] std::string to_string() const;
};

struct DiffResult {
  bool ok = true;
  Failure failure;        ///< set when !ok (fail-fast: the first one)
  int plans_checked = 0;  ///< variant compiles attempted
  int sim_runs = 0;
  int mp_runs = 0;
  int shm_runs = 0;
};

/// Differentially check one program. `seed` only steers the deterministic
/// variant/shape sub-sampling — the same (source, seed, options) triple
/// always performs the identical checks.
DiffResult run_differential(const std::string& source, std::uint64_t seed,
                            const DiffOptions& opt = {});

/// Thorough settings for regression-corpus replay: the full variant cross
/// product on every shape (reproducers are tiny, so exhaustive is cheap —
/// and a reproducer must keep failing-then-fixed under the exact variant
/// that exposed it, whichever shape it rode in on).
DiffOptions corpus_options();

}  // namespace dhpf::fuzz
