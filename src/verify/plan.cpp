#include "verify/plan.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "analysis/sets.hpp"
#include "support/diagnostics.hpp"
#include "support/metrics.hpp"

namespace dhpf::verify {

using analysis::IterSpace;
using hpf::Array;
using iset::BasicSet;
using iset::Constraint;
using iset::i64;
using iset::Params;
using iset::Set;

std::string OverlapDecl::to_string() const {
  std::ostringstream out;
  out << "overlap " << array->name << "(";
  for (std::size_t d = 0; d < width.size(); ++d) out << (d ? "," : "") << width[d];
  out << ")";
  return out.str();
}

std::string Message::to_string() const {
  std::ostringstream out;
  out << "msg#" << id << " ev#" << event_id << " " << array->name << " " << from << "->" << to
      << " (" << elems << " elems)";
  return out.str();
}

const Message& Schedule::message(int id) const {
  for (const auto& m : messages)
    if (m.id == id) return m;
  fail("verify", "unknown message id " + std::to_string(id));
}

std::string Schedule::to_string() const {
  std::ostringstream out;
  for (const auto& m : messages) out << m.to_string() << "\n";
  return out.str();
}

int CompiledPlan::nprocs() const {
  if (!prog || prog->grids().empty()) return 1;
  return prog->grids().front()->nprocs();
}

int owner_rank(const hpf::Program& prog, const Array& a, const std::vector<i64>& elem) {
  if (!a.distributed() || prog.grids().empty()) return 0;
  const hpf::ProcGrid& grid = *prog.grids().front();
  const std::vector<int> ext = analysis::template_extents(prog);
  int rank = 0;
  for (std::size_t g = 0; g < grid.extents.size(); ++g) {
    int coord = 0;
    for (std::size_t d = 0; d < a.dist.dims.size(); ++d) {
      const auto& dim = a.dist.dims[d];
      if (dim.kind != hpf::DistKind::Block || dim.proc_dim != static_cast<int>(g)) continue;
      const int e = ext[g];
      const int p = grid.extents[g];
      const int b = (e + p - 1) / p;
      coord = std::min<int>(p - 1, static_cast<int>((elem[d] + a.dist.offset(d)) / b));
    }
    rank = rank * grid.extents[g] + coord;
  }
  return rank;
}

Set extended_owned(const Array& a, const std::vector<int>& widths, const Params& params) {
  if (!a.distributed()) return analysis::index_set(a, params);
  BasicSet bs(a.extents.size(), params);
  for (std::size_t d = 0; d < a.extents.size(); ++d) {
    bs.add_bounds(d, bs.expr_const(0), bs.expr_const(a.extents[d] - 1));
    const auto& dim = a.dist.dims[d];
    if (dim.kind != hpf::DistKind::Block) continue;
    const std::string g = std::to_string(dim.proc_dim);
    const i64 off = a.dist.offset(d);
    const i64 w = d < widths.size() ? widths[d] : 0;
    // lb<g> - w <= x_d + off <= ub<g> + w
    bs.add(Constraint::ge0(bs.expr_var(d) + bs.expr_const(off + w) - bs.expr_param("lb" + g)));
    bs.add(Constraint::ge0(bs.expr_param("ub" + g) - bs.expr_var(d) + bs.expr_const(w - off)));
  }
  return Set(bs);
}

namespace {

/// Union over every statement of the elements it can touch (reads and the
/// write) through `array` on the representative processor's iterations.
Set access_footprint(const hpf::Program& prog, const cp::CpResult& cps, const Array& array,
                     const Params& params) {
  Set fp = Set::empty(array.extents.size(), params);
  for (const auto& [id, sc] : cps.stmts) {
    (void)id;
    if (!sc.stmt->is_assign()) continue;
    const hpf::Assign& a = sc.stmt->assign();
    const IterSpace is = analysis::iteration_space(sc.path, params);
    const Set iters = cp::iterations_on_home(is, sc.cp, params);
    auto add_ref = [&](const hpf::Ref& r) {
      if (r.array != &array) return;
      fp = fp.unite(iters.apply(analysis::subscript_map(is, r.subs, params)));
    };
    add_ref(a.lhs);
    for (const auto& r : a.rhs) add_ref(r);
  }
  (void)prog;
  return fp;
}

/// Minimal per-dim overlap widths whose slab contains the footprint. Each
/// BLOCK dim is independent: the slab constrains only that dimension, so the
/// intersection over dims (extended_owned) contains the footprint iff every
/// per-dim test passes.
std::vector<int> derive_widths(const Array& a, const Set& footprint, const Params& params) {
  std::vector<int> widths(a.extents.size(), 0);
  for (std::size_t d = 0; d < a.extents.size(); ++d) {
    const auto& dim = a.dist.dims[d];
    if (dim.kind != hpf::DistKind::Block) continue;
    const std::string g = std::to_string(dim.proc_dim);
    const i64 off = a.dist.offset(d);
    for (int w = 0; w <= a.extents[d]; ++w) {
      BasicSet slab(a.extents.size(), params);
      slab.add(Constraint::ge0(slab.expr_var(d) + slab.expr_const(off + w) -
                               slab.expr_param("lb" + g)));
      slab.add(Constraint::ge0(slab.expr_param("ub" + g) - slab.expr_var(d) +
                               slab.expr_const(w - off)));
      if (footprint.subtract(Set(slab)).is_empty()) {
        widths[d] = w;
        break;
      }
      widths[d] = w + 1;  // keep growing; loop bound caps at the extent
    }
  }
  return widths;
}

}  // namespace

Schedule derive_schedule(const hpf::Program& prog, const comm::CommPlan& plan) {
  Schedule sched;
  const int n = prog.grids().empty() ? 1 : prog.grids().front()->nprocs();
  sched.rank_ops.resize(static_cast<std::size_t>(n));
  if (prog.grids().empty()) return sched;

  std::vector<std::vector<i64>> vals;
  for (int q = 0; q < n; ++q) vals.push_back(analysis::param_values_for_rank(prog, q));

  for (const auto& ev : plan.events) {
    if (ev.eliminated) continue;
    // Aggregate the event's element traffic into (from, to) pair counts.
    std::map<std::pair<int, int>, std::size_t> pairs;
    const auto depth = static_cast<std::size_t>(ev.placement_depth);
    for (int q = 0; q < n; ++q) {
      ev.data.enumerate(vals[static_cast<std::size_t>(q)], [&](const std::vector<i64>& pt) {
        const std::vector<i64> elem(pt.begin() + static_cast<std::ptrdiff_t>(depth), pt.end());
        const int owner = owner_rank(prog, *ev.array, elem);
        if (owner == q) return;  // already local (block-edge clamping)
        if (ev.kind == comm::EventKind::Fetch)
          ++pairs[{owner, q}];
        else
          ++pairs[{q, owner}];
      });
    }
    // Messages in deterministic (from, to) order; ops per event mirror
    // codegen::exec_event — every rank serves its sends, then receives.
    std::vector<int> event_msgs;
    for (const auto& [ft, elems] : pairs) {
      Message m;
      m.id = static_cast<int>(sched.messages.size());
      m.event_id = ev.id;
      m.array = ev.array;
      m.from = ft.first;
      m.to = ft.second;
      m.elems = elems;
      event_msgs.push_back(m.id);
      sched.messages.push_back(m);
    }
    for (int r = 0; r < n; ++r) {
      for (int id : event_msgs)
        if (sched.messages[static_cast<std::size_t>(id)].from == r)
          sched.rank_ops[static_cast<std::size_t>(r)].push_back(
              ScheduleOp{ScheduleOp::Kind::Send, id});
    }
    for (int r = 0; r < n; ++r) {
      // Intentionally a second pass: recvs come after *all* of the rank's
      // sends for this event, never interleaved.
      for (int id : event_msgs)
        if (sched.messages[static_cast<std::size_t>(id)].to == r)
          sched.rank_ops[static_cast<std::size_t>(r)].push_back(
              ScheduleOp{ScheduleOp::Kind::Recv, id});
    }
  }
  return sched;
}

CompiledPlan bind(const hpf::Program& prog, cp::CpResult cps, comm::CommPlan plan) {
  obs::ScopedTimer timer("verify.bind");
  CompiledPlan bound;
  bound.prog = &prog;
  bound.cps = std::move(cps);
  bound.plan = std::move(plan);

  const Params params = analysis::make_params(prog);
  for (const auto& a : prog.arrays()) {
    if (!a->distributed()) continue;
    OverlapDecl decl;
    decl.array = a.get();
    decl.width = derive_widths(*a, access_footprint(prog, bound.cps, *a, params), params);
    bound.overlaps.push_back(std::move(decl));
  }
  bound.schedule = derive_schedule(prog, bound.plan);
  return bound;
}

}  // namespace dhpf::verify
