#include "verify/mutate.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/sets.hpp"
#include "support/diagnostics.hpp"

namespace dhpf::verify {

using comm::CommEvent;
using comm::EventKind;
using iset::Params;
using iset::Set;

const char* to_string(Mutation m) {
  switch (m) {
    case Mutation::DropEvent: return "drop-event";
    case Mutation::DropMessage: return "drop-message";
    case Mutation::ShrinkHalo: return "shrink-halo";
    case Mutation::PerturbCp: return "perturb-cp";
    case Mutation::RecvBeforeSend: return "recv-before-send";
    case Mutation::WidenMessage: return "widen-message";
  }
  return "?";
}

Check MutationSite::expected_check() const {
  switch (kind) {
    case Mutation::DropEvent: return Check::ReadCoverage;
    case Mutation::DropMessage: return Check::ScheduleSafety;
    case Mutation::ShrinkHalo: return Check::HaloSufficiency;
    case Mutation::PerturbCp: return Check::ReadCoverage;  // or ReplicaConsistency
    case Mutation::RecvBeforeSend: return Check::ScheduleSafety;
    case Mutation::WidenMessage: return Check::DeadComm;
  }
  return Check::ReadCoverage;
}

Severity MutationSite::expected_severity() const {
  return kind == Mutation::WidenMessage ? Severity::Warning : Severity::Error;
}

namespace {

/// First BLOCK-distributed dimension of an array, or -1.
int first_block_dim(const hpf::Array& a) {
  for (std::size_t d = 0; d < a.dist.dims.size(); ++d)
    if (a.dist.dims[d].kind == hpf::DistKind::Block) return static_cast<int>(d);
  return -1;
}

/// Payload a WidenMessage mutation adds to `ev`: one halo layer beyond the
/// *declared* overlap. Elements of the ring that a consumer happens to read
/// are harmless (the lint only counts unread traffic), so the ring is NOT
/// trimmed symbolically — subtracting the consumers' many-part read images
/// fragments the difference combinatorially.
Set widen_ring(const CompiledPlan& plan, const CommEvent& ev, const Params& params) {
  std::vector<int> declared(ev.array->extents.size(), 0);
  for (const auto& decl : plan.overlaps)
    if (decl.array == ev.array) declared = decl.width;
  std::vector<int> wider = declared;
  for (std::size_t d = 0; d < wider.size(); ++d)
    if (ev.array->dist.dims[d].kind == hpf::DistKind::Block) ++wider[d];
  return extended_owned(*ev.array, wider, params)
      .subtract(extended_owned(*ev.array, declared, params));
}

/// Does shrinking `decl` by one along `dim` concretely uncover a footprint
/// point on some rank? Declared widths are the *symbolically* minimal ones
/// (safe for arbitrary block positions), which on a concrete grid can exceed
/// what any rank actually reads — e.g. a transpose halo of width N-block is
/// one wider than the loop bounds ever reach. Shrinking such a halo is not an
/// observable defect, so it is not a valid fault-injection site.
bool shrink_uncovers_point(const CompiledPlan& plan, const OverlapDecl& decl, std::size_t dim,
                           const Params& params) {
  std::vector<int> shrunk = decl.width;
  --shrunk[dim];
  const Set ext = extended_owned(*decl.array, shrunk, params);
  const Set bounds = analysis::index_set(*decl.array, params);
  const int n = plan.prog->grids().empty() ? 1 : plan.prog->grids().front()->nprocs();
  for (const auto& [id, sc] : plan.cps.stmts) {
    (void)id;
    if (!sc.stmt->is_assign()) continue;
    const analysis::IterSpace is = analysis::iteration_space(sc.path, params);
    const Set iters = cp::iterations_on_home(is, sc.cp, params);
    for (const auto& r : sc.stmt->assign().rhs) {
      if (r.array != decl.array) continue;
      const Set fp =
          iters.apply(analysis::subscript_map(is, r.subs, params)).intersect(bounds);
      for (int q = 0; q < n; ++q) {
        const std::vector<iset::i64> v = analysis::param_values_for_rank(*plan.prog, q);
        bool uncovered = false;
        fp.enumerate(v, [&](const std::vector<iset::i64>& pt) {
          if (!uncovered && !ext.contains(pt, v)) uncovered = true;
        });
        if (uncovered) return true;
      }
    }
  }
  return false;
}

/// Project an event's data relation down to array dimensions (mirror of the
/// verifier's event_array_set).
Set event_data_set(const CommEvent& e) {
  Set s = e.data;
  for (int d = 0; d < e.placement_depth; ++d) s = s.project_out(0);
  return s;
}

/// Does dropping `ev` concretely lose a fetched element some consumer reads
/// and no sibling fetch still carries? Plans can legitimately fetch the same
/// halo element through two events with a shared consumer (e.g. two reads of
/// one array in a statement, before coalescing merges them) — dropping one
/// such event is semantically harmless, the verifier rightly accepts it, and
/// it therefore is not a valid fault-injection site.
bool drop_loses_point(const CompiledPlan& plan, const CommEvent& ev, const Params& params) {
  const Set dropped = event_data_set(ev);
  const Set owned = analysis::owned_set(*ev.array, params);
  const int n = plan.prog->grids().empty() ? 1 : plan.prog->grids().front()->nprocs();
  for (int cid : ev.consumers) {
    const auto it = plan.cps.stmts.find(cid);
    if (it == plan.cps.stmts.end() || !it->second.stmt->is_assign()) continue;
    const cp::StmtCp& sc = it->second;
    const analysis::IterSpace is = analysis::iteration_space(sc.path, params);
    const Set iters = cp::iterations_on_home(is, sc.cp, params);
    Set still = Set::empty(ev.array->extents.size(), params);
    for (const auto& e2 : plan.plan.events) {
      if (&e2 == &ev || e2.kind != EventKind::Fetch || e2.eliminated ||
          e2.array != ev.array)
        continue;
      if (std::find(e2.consumers.begin(), e2.consumers.end(), cid) == e2.consumers.end())
        continue;
      still = still.unite(event_data_set(e2));
    }
    for (const auto& r : sc.stmt->assign().rhs) {
      if (r.array != ev.array) continue;
      const Set fp = iters.apply(analysis::subscript_map(is, r.subs, params));
      for (int q = 0; q < n; ++q) {
        const std::vector<iset::i64> v = analysis::param_values_for_rank(*plan.prog, q);
        bool lost = false;
        fp.enumerate(v, [&](const std::vector<iset::i64>& pt) {
          if (lost || owned.contains(pt, v) || still.contains(pt, v)) return;
          if (dropped.contains(pt, v)) lost = true;
        });
        if (lost) return true;
      }
    }
  }
  return false;
}

/// Does the widen ring hold at least one concrete element no consumer of the
/// event reads? Only then does widening seed a defect the dead-comm lint is
/// guaranteed to flag. Checked by exact per-rank enumeration; the consumers'
/// read images are kept as separate sets and tested by membership.
bool ring_has_dead_point(const CompiledPlan& plan, const CommEvent& ev, const Params& params) {
  const Set ring = widen_ring(plan, ev, params);
  std::vector<Set> images;
  for (int cid : ev.consumers) {
    const auto it = plan.cps.stmts.find(cid);
    if (it == plan.cps.stmts.end() || !it->second.stmt->is_assign()) continue;
    const cp::StmtCp& sc = it->second;
    const analysis::IterSpace is = analysis::iteration_space(sc.path, params);
    const Set iters = cp::iterations_on_home(is, sc.cp, params);
    for (const auto& r : sc.stmt->assign().rhs)
      if (r.array == ev.array)
        images.push_back(iters.apply(analysis::subscript_map(is, r.subs, params)));
  }
  const int n = plan.prog->grids().empty() ? 1 : plan.prog->grids().front()->nprocs();
  bool dead = false;
  for (int q = 0; q < n && !dead; ++q) {
    const std::vector<iset::i64> v = analysis::param_values_for_rank(*plan.prog, q);
    ring.enumerate(v, [&](const std::vector<iset::i64>& pt) {
      if (dead) return;
      for (const Set& img : images)
        if (img.contains(pt, v)) return;
      dead = true;
    });
  }
  return dead;
}

/// Shift every CP term by +1 along its first BLOCK dim (the PerturbCp
/// defect). Returns false when no term spans a BLOCK-distributed array.
bool shift_cp_terms(std::vector<cp::OnHomeTerm>& terms) {
  bool shifted = false;
  for (cp::OnHomeTerm& term : terms) {
    const int d = first_block_dim(*term.array);
    if (d < 0) continue;
    term.subs[static_cast<std::size_t>(d)].lo =
        term.subs[static_cast<std::size_t>(d)].lo.plus(1);
    term.subs[static_cast<std::size_t>(d)].hi =
        term.subs[static_cast<std::size_t>(d)].hi.plus(1);
    shifted = true;
  }
  return shifted;
}

/// Does shifting the CP of `sc` move at least one instance to a different
/// rank? A +1 shift of a home subscript that stays inside the same block
/// leaves the executed sets identical — the "mutated" plan is the original
/// plan, nothing is broken, and the site is not a valid seeded defect.
bool shift_moves_instance(const CompiledPlan& plan, const cp::StmtCp& sc,
                          const Params& params) {
  cp::CP shifted = sc.cp;
  if (!shift_cp_terms(shifted.terms)) return false;
  const analysis::IterSpace is = analysis::iteration_space(sc.path, params);
  const Set mine = cp::iterations_on_home(is, sc.cp, params);
  const Set moved = cp::iterations_on_home(is, shifted, params);
  const int n = plan.prog->grids().empty() ? 1 : plan.prog->grids().front()->nprocs();
  for (int q = 0; q < n; ++q) {
    const std::vector<iset::i64> v = analysis::param_values_for_rank(*plan.prog, q);
    bool differs = false;
    mine.enumerate(v, [&](const std::vector<iset::i64>& pt) {
      if (!differs && !moved.contains(pt, v)) differs = true;
    });
    if (!differs)
      moved.enumerate(v, [&](const std::vector<iset::i64>& pt) {
        if (!differs && !mine.contains(pt, v)) differs = true;
      });
    if (differs) return true;
  }
  return false;
}

MutationSite make_site(Mutation kind, int index, int dim, std::string describe) {
  MutationSite s;
  s.kind = kind;
  s.index = index;
  s.dim = dim;
  s.describe = std::move(describe);
  return s;
}

}  // namespace

std::vector<MutationSite> mutation_sites(const CompiledPlan& plan, Mutation kind) {
  std::vector<MutationSite> sites;
  switch (kind) {
    case Mutation::DropEvent: {
      const Params params = analysis::make_params(*plan.prog);
      for (const auto& ev : plan.plan.events)
        if (ev.kind == EventKind::Fetch && !ev.eliminated &&
            drop_loses_point(plan, ev, params))
          sites.push_back(make_site(kind, ev.id, -1,
                                    "drop fetch ev#" + std::to_string(ev.id) + " of " +
                                        ev.array->name));
      break;
    }

    case Mutation::DropMessage:
      for (const auto& m : plan.schedule.messages)
        sites.push_back(make_site(kind, m.id, -1, "drop send of " + m.to_string()));
      break;

    case Mutation::ShrinkHalo: {
      const Params params = analysis::make_params(*plan.prog);
      for (std::size_t i = 0; i < plan.overlaps.size(); ++i) {
        const OverlapDecl& decl = plan.overlaps[i];
        for (std::size_t d = 0; d < decl.width.size(); ++d)
          if (decl.width[d] >= 1 && shrink_uncovers_point(plan, decl, d, params))
            sites.push_back(make_site(kind, static_cast<int>(i), static_cast<int>(d),
                                      "shrink " + decl.to_string() + " dim " +
                                          std::to_string(d) + " by 1"));
      }
      break;
    }

    case Mutation::PerturbCp: {
      const Params params = analysis::make_params(*plan.prog);
      for (const auto& [id, sc] : plan.cps.stmts) {
        if (!sc.stmt->is_assign()) continue;
        if (shift_moves_instance(plan, sc, params))
          sites.push_back(make_site(kind, id, -1,
                                    "shift CP of S" + std::to_string(id) + " (" +
                                        sc.cp.to_string() + ") by +1"));
      }
      break;
    }

    case Mutation::RecvBeforeSend: {
      // One site per unordered rank pair that exchanges messages in both
      // directions: hoisting receives above sends on *both* endpoints turns
      // the exchange into a classic head-to-head deadlock.
      std::set<std::pair<int, int>> done;
      for (const auto& m1 : plan.schedule.messages) {
        for (const auto& m2 : plan.schedule.messages) {
          if (m1.from != m2.to || m1.to != m2.from || m1.from == m1.to) continue;
          const auto pr = std::minmax(m1.from, m1.to);
          if (!done.insert({pr.first, pr.second}).second) continue;
          sites.push_back(make_site(kind, m1.id, m2.id,
                                    "recv-before-send on ranks " + std::to_string(m1.from) +
                                        "<->" + std::to_string(m1.to)));
        }
      }
      break;
    }

    case Mutation::WidenMessage: {
      const Params params = analysis::make_params(*plan.prog);
      for (const auto& ev : plan.plan.events)
        if (ev.kind == EventKind::Fetch && !ev.eliminated && ev.placement_depth == 0 &&
            first_block_dim(*ev.array) >= 0 &&
            ring_has_dead_point(plan, ev, params))
          sites.push_back(make_site(kind, ev.id, -1,
                                    "widen fetch ev#" + std::to_string(ev.id) + " of " +
                                        ev.array->name + " by one dead halo layer"));
      break;
    }
  }
  return sites;
}

std::vector<MutationSite> all_mutation_sites(const CompiledPlan& plan) {
  std::vector<MutationSite> all;
  for (Mutation m : {Mutation::DropEvent, Mutation::DropMessage, Mutation::ShrinkHalo,
                     Mutation::PerturbCp, Mutation::RecvBeforeSend, Mutation::WidenMessage}) {
    auto s = mutation_sites(plan, m);
    all.insert(all.end(), s.begin(), s.end());
  }
  return all;
}

CompiledPlan mutate(const CompiledPlan& plan, const MutationSite& site) {
  require(plan.prog != nullptr, "verify", "mutate: plan not bound");
  CompiledPlan out = plan;

  switch (site.kind) {
    case Mutation::DropEvent: {
      bool found = false;
      for (auto& ev : out.plan.events)
        if (ev.id == site.index && ev.kind == EventKind::Fetch && !ev.eliminated) {
          ev.eliminated = true;  // "availability pass wrongly removed this fetch"
          ev.note = "mutated: dropped";
          found = true;
        }
      require(found, "verify", "mutate: no droppable event " + std::to_string(site.index));
      out.schedule = derive_schedule(*out.prog, out.plan);
      return out;
    }

    case Mutation::DropMessage: {
      const Message& m = out.schedule.message(site.index);  // throws if absent
      auto& ops = out.schedule.rank_ops[static_cast<std::size_t>(m.from)];
      const auto it = std::find_if(ops.begin(), ops.end(), [&](const ScheduleOp& op) {
        return op.kind == ScheduleOp::Kind::Send && op.msg == m.id;
      });
      require(it != ops.end(), "verify",
              "mutate: message " + std::to_string(m.id) + " has no send op");
      ops.erase(it);
      return out;
    }

    case Mutation::ShrinkHalo: {
      require(site.index >= 0 &&
                  static_cast<std::size_t>(site.index) < out.overlaps.size(),
              "verify", "mutate: no overlap decl " + std::to_string(site.index));
      OverlapDecl& decl = out.overlaps[static_cast<std::size_t>(site.index)];
      require(site.dim >= 0 && static_cast<std::size_t>(site.dim) < decl.width.size() &&
                  decl.width[static_cast<std::size_t>(site.dim)] >= 1,
              "verify", "mutate: halo dim not shrinkable");
      --decl.width[static_cast<std::size_t>(site.dim)];
      return out;
    }

    case Mutation::PerturbCp: {
      auto it = out.cps.stmts.find(site.index);
      require(it != out.cps.stmts.end(), "verify",
              "mutate: no statement S" + std::to_string(site.index));
      auto& terms = it->second.cp.terms;
      require(!terms.empty(), "verify", "mutate: replicated CP cannot be perturbed");
      // Shift EVERY term by +1 along its first BLOCK dim — a uniform shift
      // of the whole executed set. (Shifting a single term of a §4.1/§4.2
      // union CP can be absorbed by the remaining terms' redundancy, which
      // would be a benign mutation, not a seeded defect.)
      require(shift_cp_terms(terms), "verify",
              "mutate: no CP term over a BLOCK-distributed array");
      // The comm plan, overlaps and schedule intentionally stay stale: the
      // defect is the inconsistency between the CP and the rest of the plan.
      return out;
    }

    case Mutation::RecvBeforeSend: {
      const Message& m1 = out.schedule.message(site.index);
      const Message& m2 = out.schedule.message(site.dim);
      require(m1.from == m2.to && m1.to == m2.from, "verify",
              "mutate: messages are not an opposing pair");
      for (int r : {m1.to, m2.to}) {
        auto& ops = out.schedule.rank_ops[static_cast<std::size_t>(r)];
        std::stable_partition(ops.begin(), ops.end(), [](const ScheduleOp& op) {
          return op.kind == ScheduleOp::Kind::Recv;
        });
      }
      return out;
    }

    case Mutation::WidenMessage: {
      bool found = false;
      const Params params = analysis::make_params(*out.prog);
      for (auto& ev : out.plan.events) {
        if (ev.id != site.index) continue;
        require(ev.kind == EventKind::Fetch && !ev.eliminated && ev.placement_depth == 0,
                "verify", "mutate: event not widenable");
        ev.data = ev.data.unite(widen_ring(plan, ev, params));
        ev.note += " (mutated: widened)";
        found = true;
      }
      require(found, "verify", "mutate: no event " + std::to_string(site.index));
      out.schedule = derive_schedule(*out.prog, out.plan);
      return out;
    }
  }
  fail("verify", "mutate: unknown mutation kind");
}

HarnessResult run_harness(const CompiledPlan& plan, const VerifyOptions& opt) {
  HarnessResult res;
  for (const MutationSite& site : all_mutation_sites(plan)) {
    ++res.seeded;
    const auto t0 = std::chrono::steady_clock::now();
    const CompiledPlan broken = mutate(plan, site);
    const Report rep = check(broken, opt);
    const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                            .count();
    bool hit = false;
    for (const auto& d : rep.diagnostics) {
      if (d.severity != site.expected_severity()) continue;
      if (d.check == site.expected_check() ||
          (site.kind == Mutation::PerturbCp && d.check == Check::ReplicaConsistency)) {
        hit = true;
        break;
      }
    }
    if (hit) ++res.caught;
    std::ostringstream line;
    line << (hit ? "caught " : "MISSED ") << to_string(site.kind) << ": " << site.describe
         << " (" << std::fixed << std::setprecision(2) << secs << "s)";
    res.lines.push_back(line.str());
  }
  return res;
}

}  // namespace dhpf::verify
