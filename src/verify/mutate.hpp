// Fault-injection harness for the verifier: seeded defects over a bound
// plan, one mutation per defect class the checks must catch.
//
// Each mutator edits a *copy* of the CompiledPlan (declarations included),
// returning the mutated plan plus a description of what was broken and the
// Check expected to fire. The verify tests (and `dhpfc --verify-selftest`)
// enumerate every applicable mutation of a plan and assert that check()
// reports an error of the expected class with a witness naming the broken
// artifact — this is what makes "a clean report is trustworthy" an empirical
// claim and not just a design intention.
#pragma once

#include <string>
#include <vector>

#include "verify/plan.hpp"
#include "verify/verify.hpp"

namespace dhpf::verify {

/// The seeded defect classes.
enum class Mutation {
  DropEvent,       ///< delete one fetch event entirely → ReadCoverage
  DropMessage,     ///< remove one message's Send op → ScheduleSafety
  ShrinkHalo,      ///< decrement one declared overlap width → HaloSufficiency
  PerturbCp,       ///< shift a statement's whole CP by one → ReadCoverage /
                   ///< ReplicaConsistency
  RecvBeforeSend,  ///< hoist recvs above sends on an exchanging rank pair
                   ///< → ScheduleSafety (deadlock cycle)
  WidenMessage,    ///< fetch one extra unread boundary layer → DeadComm (warning)
};

const char* to_string(Mutation m);

/// One applicable mutation site in a plan.
struct MutationSite {
  Mutation kind = Mutation::DropEvent;
  int index = -1;       ///< event id / message id / overlap ordinal / stmt id / rank
  int dim = -1;         ///< array dim (ShrinkHalo) or term ordinal (PerturbCp)
  std::string describe;

  [[nodiscard]] Check expected_check() const;
  [[nodiscard]] Severity expected_severity() const;
};

/// Enumerate every applicable site of `kind` in the plan (empty when the
/// plan has no artifact the mutation could break — e.g. no halo of width
/// ≥ 1 to shrink).
std::vector<MutationSite> mutation_sites(const CompiledPlan& plan, Mutation kind);

/// All applicable sites of all mutation kinds.
std::vector<MutationSite> all_mutation_sites(const CompiledPlan& plan);

/// Apply one mutation to a copy of the plan. The schedule is re-derived
/// when the mutation edits the events (the declarations stay as-is: the
/// point is an inconsistency between artifacts, which is what the checks
/// detect). Throws dhpf::Error if the site does not exist in this plan.
CompiledPlan mutate(const CompiledPlan& plan, const MutationSite& site);

/// Run the whole harness: apply every applicable mutation and verify each
/// one is caught (an error of the expected class, or for WidenMessage a
/// warning). Returns human-readable one-line results; `all_caught` is false
/// if any seeded defect escaped.
struct HarnessResult {
  std::vector<std::string> lines;
  std::size_t seeded = 0;
  std::size_t caught = 0;

  [[nodiscard]] bool all_caught() const { return caught == seeded; }
};
HarnessResult run_harness(const CompiledPlan& plan, const VerifyOptions& opt = {});

}  // namespace dhpf::verify
