#include "verify/verify.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "analysis/sets.hpp"
#include "exec/parallel.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/scc.hpp"

namespace dhpf::verify {

using analysis::IterSpace;
using comm::CommEvent;
using comm::EventKind;
using hpf::Array;
using iset::i64;
using iset::Params;
using iset::Set;

const char* to_string(Check c) {
  switch (c) {
    case Check::ReadCoverage: return "read-coverage";
    case Check::ReplicaConsistency: return "replica-consistency";
    case Check::HaloSufficiency: return "halo-sufficiency";
    case Check::ScheduleSafety: return "schedule-safety";
    case Check::DeadComm: return "dead-comm";
  }
  return "?";
}

const char* to_string(Severity s) { return s == Severity::Error ? "error" : "warning"; }

std::string Witness::to_string() const {
  std::ostringstream out;
  bool any = false;
  auto sep = [&] { out << (any ? ", " : ""); any = true; };
  if (array) {
    sep();
    out << array->name;
    if (!element.empty()) {
      out << "(";
      for (std::size_t i = 0; i < element.size(); ++i) out << (i ? "," : "") << element[i];
      out << ")";
    }
  }
  if (rank >= 0) {
    sep();
    out << "rank " << rank;
  }
  if (stmt_id >= 0) {
    sep();
    out << "S" << stmt_id;
  }
  if (event_id >= 0) {
    sep();
    out << "ev#" << event_id;
  }
  if (message_id >= 0) {
    sep();
    out << "msg#" << message_id;
  }
  if (!cycle.empty()) {
    sep();
    out << "cycle [";
    for (std::size_t i = 0; i < cycle.size(); ++i) out << (i ? " " : "") << "msg#" << cycle[i];
    out << "]";
  }
  if (bytes > 0) {
    sep();
    out << bytes << " bytes";
  }
  return out.str();
}

std::string Diagnostic::to_string() const {
  std::string s = std::string(verify::to_string(severity)) + " [" +
                  verify::to_string(check) + "] " + message;
  const std::string w = witness.to_string();
  if (!w.empty()) s += " — witness: " + w;
  return s;
}

std::size_t Report::errors() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics)
    if (d.severity == Severity::Error) ++n;
  return n;
}

std::size_t Report::warnings() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics)
    if (d.severity == Severity::Warning) ++n;
  return n;
}

std::vector<const Diagnostic*> Report::by_check(Check c) const {
  std::vector<const Diagnostic*> out;
  for (const auto& d : diagnostics)
    if (d.check == c) out.push_back(&d);
  return out;
}

std::string Report::to_string() const {
  std::ostringstream out;
  out << "verify: " << checks_run << " checks, " << errors() << " errors, " << warnings()
      << " warnings" << (clean() ? " — plan OK" : "") << "\n";
  for (const auto& d : diagnostics) out << "  " << d.to_string() << "\n";
  return out.str();
}

std::string Report::to_json() const {
  json::Writer w(/*pretty=*/false);
  w.begin_object();
  w.member("clean", clean());
  w.member("checks_run", static_cast<std::uint64_t>(checks_run));
  w.member("errors", static_cast<std::uint64_t>(errors()));
  w.member("warnings", static_cast<std::uint64_t>(warnings()));
  w.key("diagnostics");
  w.begin_array();
  for (const auto& d : diagnostics) {
    w.begin_object();
    w.member("check", verify::to_string(d.check));
    w.member("severity", verify::to_string(d.severity));
    w.member("message", d.message);
    w.key("witness");
    w.begin_object();
    if (d.witness.array) w.member("array", d.witness.array->name);
    if (!d.witness.element.empty()) {
      w.key("element");
      w.begin_array();
      for (i64 v : d.witness.element) w.value(static_cast<std::int64_t>(v));
      w.end_array();
    }
    if (d.witness.rank >= 0) w.member("rank", d.witness.rank);
    if (d.witness.stmt_id >= 0) w.member("stmt", d.witness.stmt_id);
    if (d.witness.event_id >= 0) w.member("event", d.witness.event_id);
    if (d.witness.message_id >= 0) w.member("message", d.witness.message_id);
    if (!d.witness.cycle.empty()) {
      w.key("cycle");
      w.begin_array();
      for (int m : d.witness.cycle) w.value(m);
      w.end_array();
    }
    if (d.witness.bytes > 0) w.member("bytes", static_cast<std::uint64_t>(d.witness.bytes));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

namespace {

struct Ctx {
  const CompiledPlan& plan;
  const VerifyOptions& opt;
  Params params;
  int nprocs = 1;
  std::vector<std::vector<i64>> vals;  ///< per-rank parameter values
  /// Cache of per-(statement, array) non-local read sets, shared between
  /// the coverage check and the dead-communication lint.
  std::map<std::pair<int, const Array*>, Set> need_cache;
  Report report;

  void diag(Check c, Severity s, std::string message, Witness w) {
    Diagnostic d;
    d.check = c;
    d.severity = s;
    d.message = std::move(message);
    d.witness = std::move(w);
    report.diagnostics.push_back(std::move(d));
  }
};

/// Project an event's data relation down to array dimensions (drop the
/// outer-loop prefix it is vectorized over).
Set event_array_set(const CommEvent& e) {
  Set s = e.data;
  for (int d = 0; d < e.placement_depth; ++d) s = s.project_out(0);
  return s;
}

/// First concrete point of `s` over the ranks, with the rank it appears on.
std::optional<std::pair<int, std::vector<i64>>> concrete_witness(const Ctx& ctx, const Set& s) {
  for (int q = 0; q < ctx.nprocs; ++q) {
    auto pt = s.sample(ctx.vals[static_cast<std::size_t>(q)]);
    if (pt) return std::make_pair(q, std::move(*pt));
  }
  return std::nullopt;
}

/// Union-part budget above which the coverage test switches from the
/// symbolic set difference to exact per-rank enumeration. Subtracting a
/// heavily fragmented union multiplies complement parts combinatorially;
/// the enumeration path is exact and exhaustive for the configured grid
/// (every rank's parameter values are checked), just not symbolic.
constexpr std::size_t kMaxSymbolicParts = 24;

/// Intermediate-fragmentation cap for the symbolic path: each subtraction
/// can split every remaining part, so even a small cover union can blow the
/// difference up combinatorially (time *and* memory). When the running
/// difference crosses this, the symbolic attempt is abandoned mid-way and
/// the enumeration path decides instead.
constexpr std::size_t kMaxIntermediateParts = 256;

struct CoverResult {
  bool covered = false;
  std::optional<std::pair<int, std::vector<i64>>> witness;  ///< set iff provably uncovered
  bool conservative = false;  ///< symbolically uncovered but no concrete witness
};

/// Is need ⊆ ∪ covers? Symbolic difference when the covers are compact,
/// exact per-rank point enumeration otherwise.
CoverResult is_covered(const Ctx& ctx, const Set& need, const std::vector<const Set*>& covers) {
  std::size_t parts = 0;
  for (const Set* c : covers) parts += c->parts().size();
  CoverResult res;
  if (parts <= kMaxSymbolicParts) {
    Set uncovered = need;
    bool symbolic_ok = true;
    for (const Set* c : covers) {
      // Part-at-a-time so fragmentation is observable between steps; a
      // whole-union subtract can blow up inside one call.
      for (const iset::BasicSet& p : c->parts()) {
        uncovered = uncovered.subtract(Set(p));
        if (uncovered.parts().size() > kMaxIntermediateParts) {
          symbolic_ok = false;
          break;
        }
      }
      if (!symbolic_ok) break;
    }
    if (symbolic_ok) {
      if (uncovered.is_empty()) {
        res.covered = true;
        return res;
      }
      res.witness = concrete_witness(ctx, uncovered);
      res.conservative = !res.witness.has_value();
      return res;
    }
  }
  for (int q = 0; q < ctx.nprocs; ++q) {
    const std::vector<i64>& v = ctx.vals[static_cast<std::size_t>(q)];
    need.enumerate(v, [&](const std::vector<i64>& pt) {
      if (res.witness) return;
      for (const Set* c : covers)
        if (c->contains(pt, v)) return;
      res.witness = std::make_pair(q, pt);
    });
    if (res.witness) return res;
  }
  res.covered = true;
  return res;
}

/// Non-local elements the representative processor reads through `arr` in
/// statement `sc` (union over that statement's reads of the array) — the
/// pure computation behind nonlocal_read, also used by the parallel
/// need-cache prefill in check().
Set compute_nonlocal_read(const Params& params, const cp::StmtCp& sc, const Array* arr) {
  const IterSpace is = analysis::iteration_space(sc.path, params);
  const Set iters = cp::iterations_on_home(is, sc.cp, params);
  const Set owned = analysis::owned_set(*arr, params);
  Set need = Set::empty(arr->extents.size(), params);
  for (const auto& r : sc.stmt->assign().rhs) {
    if (r.array != arr) continue;
    need = need.unite(
        iters.apply(analysis::subscript_map(is, r.subs, params)).subtract(owned));
  }
  return need;
}

const Set& nonlocal_read(Ctx& ctx, const cp::StmtCp& sc, const Array* arr) {
  const int id = sc.stmt->assign().id;
  auto it = ctx.need_cache.find({id, arr});
  if (it != ctx.need_cache.end()) return it->second;
  Set need = compute_nonlocal_read(ctx.params, sc, arr);
  return ctx.need_cache.emplace(std::make_pair(id, arr), std::move(need)).first->second;
}

/// The §7 "last preceding writer" of `arr` relative to consumer `cid` —
/// must mirror comm.cpp's rule so availability-eliminated fetches verify.
const cp::StmtCp* last_preceding_writer(const std::vector<const cp::StmtCp*>& writers,
                                        int cid) {
  const cp::StmtCp* last = nullptr;
  for (const auto* w : writers) {
    const int wid = w->stmt->assign().id;
    if (wid == cid) continue;
    if (!last) {
      last = w;
      continue;
    }
    const int lid = last->stmt->assign().id;
    const bool w_before = wid < cid, l_before = lid < cid;
    if ((w_before && (!l_before || wid > lid)) || (!w_before && !l_before && wid > lid))
      last = w;
  }
  return last;
}

/// Non-local elements of its own lhs the representative processor produces
/// in `sc` (§7's "data made locally available by a write").
Set nonlocal_written(const Ctx& ctx, const cp::StmtCp& sc) {
  const hpf::Assign& a = sc.stmt->assign();
  const IterSpace is = analysis::iteration_space(sc.path, ctx.params);
  const Set iters = cp::iterations_on_home(is, sc.cp, ctx.params);
  return iters.apply(analysis::subscript_map(is, a.lhs.subs, ctx.params))
      .subtract(analysis::owned_set(*a.lhs.array, ctx.params));
}

// ------------------------------------------------------- check 1: coverage

void check_read_coverage(Ctx& ctx,
                         const std::map<const Array*, std::vector<const cp::StmtCp*>>& writers) {
  for (const auto& [id, sc] : ctx.plan.cps.stmts) {
    if (!sc.stmt->is_assign()) continue;
    const hpf::Assign& a = sc.stmt->assign();
    std::vector<const Array*> arrays;
    for (const auto& r : a.rhs)
      if (r.array->distributed() &&
          std::find(arrays.begin(), arrays.end(), r.array) == arrays.end())
        arrays.push_back(r.array);
    for (const Array* arr : arrays) {
      ++ctx.report.checks_run;
      const Set& need = nonlocal_read(ctx, sc, arr);
      if (need.is_empty()) continue;
      Set received = Set::empty(arr->extents.size(), ctx.params);
      for (const auto& ev : ctx.plan.plan.events) {
        if (ev.kind != EventKind::Fetch || ev.eliminated || ev.array != arr) continue;
        if (std::find(ev.consumers.begin(), ev.consumers.end(), id) == ev.consumers.end())
          continue;
        received = received.unite(event_array_set(ev));
      }
      std::optional<Set> produced;
      if (auto wit = writers.find(arr); wit != writers.end())
        if (const cp::StmtCp* last = last_preceding_writer(wit->second, id))
          produced = nonlocal_written(ctx, *last);
      std::vector<const Set*> covers{&received};
      if (produced) covers.push_back(&*produced);
      const CoverResult cov = is_covered(ctx, need, covers);
      if (cov.covered) continue;
      Witness w;
      w.array = arr;
      w.stmt_id = id;
      if (cov.witness) {
        w.rank = cov.witness->first;
        w.element = cov.witness->second;
        ctx.diag(Check::ReadCoverage, Severity::Error,
                 "statement S" + std::to_string(id) + " reads " + arr->name +
                     " elements that are neither owned, received, nor locally produced",
                 std::move(w));
      } else {
        ctx.diag(Check::ReadCoverage, Severity::Warning,
                 "reads of " + arr->name + " in S" + std::to_string(id) +
                     " are not symbolically covered (no concrete counterexample found)",
                 std::move(w));
      }
    }
  }
}

// ------------------------------------- check 2: replicated-write consistency

void check_replica_consistency(Ctx& ctx) {
  for (const auto& [id, sc] : ctx.plan.cps.stmts) {
    if (!sc.stmt->is_assign()) continue;
    const hpf::Assign& a = sc.stmt->assign();
    if (!a.lhs.array->distributed()) continue;
    ++ctx.report.checks_run;
    const IterSpace is = analysis::iteration_space(sc.path, ctx.params);
    const Set all_iters = Set(is.bounds);
    const Set mine = cp::iterations_on_home(is, sc.cp, ctx.params);
    const auto lhs_map = analysis::subscript_map(is, a.lhs.subs, ctx.params);

    // (a) Every instance must execute on at least one rank, or the owner
    // copy of its lhs element never receives the serial value.
    const std::vector<i64>& v0 = ctx.vals[0];
    if (all_iters.count(v0) <= ctx.opt.max_instances) {
      std::optional<std::vector<i64>> missing;
      std::size_t missing_count = 0;
      all_iters.enumerate(v0, [&](const std::vector<i64>& pt) {
        for (int q = 0; q < ctx.nprocs; ++q)
          if (mine.contains(pt, ctx.vals[static_cast<std::size_t>(q)])) return;
        ++missing_count;
        if (!missing) missing = pt;
      });
      if (missing) {
        Witness w;
        w.array = a.lhs.array;
        w.stmt_id = id;
        w.element = lhs_map.eval(*missing, v0);
        w.rank = owner_rank(*ctx.plan.prog, *a.lhs.array, w.element);
        ctx.diag(Check::ReplicaConsistency, Severity::Error,
                 "CP of S" + std::to_string(id) + " drops " + std::to_string(missing_count) +
                     " instance(s): no rank executes them, the owner copy goes stale",
                 std::move(w));
      }
    } else {
      Witness w;
      w.stmt_id = id;
      ctx.diag(Check::ReplicaConsistency, Severity::Warning,
               "instance-execution check for S" + std::to_string(id) +
                   " skipped (iteration space above max_instances)",
               std::move(w));
    }

    // (b) Non-owner writes must either be the partial-replication shape
    // (owner-computes term included — the owner recomputes every replica,
    // so replicas are provably identical copies given read coverage) or be
    // written back to the owner.
    const Set nonowner =
        mine.apply(lhs_map).subtract(analysis::owned_set(*a.lhs.array, ctx.params));
    if (nonowner.is_empty()) continue;
    const cp::OnHomeTerm own = cp::OnHomeTerm::from_ref(a.lhs);
    bool owner_included = false;
    for (const auto& t : sc.cp.terms)
      if (t == own) owner_included = true;
    if (owner_included) continue;
    Set covered = Set::empty(a.lhs.array->extents.size(), ctx.params);
    for (const auto& ev : ctx.plan.plan.events) {
      if (ev.kind != EventKind::WriteBack || ev.eliminated || ev.array != a.lhs.array) continue;
      if (std::find(ev.consumers.begin(), ev.consumers.end(), id) == ev.consumers.end())
        continue;
      covered = covered.unite(event_array_set(ev));
    }
    const Set uncovered = nonowner.subtract(covered);
    if (uncovered.is_empty()) continue;
    auto cw = concrete_witness(ctx, uncovered);
    Witness w;
    w.array = a.lhs.array;
    w.stmt_id = id;
    if (cw) {
      w.rank = cw->first;
      w.element = cw->second;
      ctx.diag(Check::ReplicaConsistency, Severity::Error,
               "S" + std::to_string(id) + " writes non-owned elements of " +
                   a.lhs.array->name +
                   " that are never written back — cross-rank write-write race / lost update",
               std::move(w));
    } else {
      ctx.diag(Check::ReplicaConsistency, Severity::Warning,
               "non-owner writes of S" + std::to_string(id) +
                   " not symbolically covered by write-backs (no concrete counterexample)",
               std::move(w));
    }
  }
}

// ------------------------------------------- check 3: halo sufficiency

void check_halo_sufficiency(Ctx& ctx) {
  for (const auto& decl : ctx.plan.overlaps) {
    const Set ext = extended_owned(*decl.array, decl.width, ctx.params);
    for (const auto& [id, sc] : ctx.plan.cps.stmts) {
      if (!sc.stmt->is_assign()) continue;
      const hpf::Assign& a = sc.stmt->assign();
      const IterSpace is = analysis::iteration_space(sc.path, ctx.params);
      std::optional<Set> iters;  // computed lazily, once per statement
      auto check_ref = [&](const hpf::Ref& r) {
        if (r.array != decl.array) return;
        ++ctx.report.checks_run;
        if (!iters) iters = cp::iterations_on_home(is, sc.cp, ctx.params);
        // Clamp to the index space: the overlap declares in-bounds halo
        // storage, so out-of-bounds accesses are not a halo-width problem.
        const Set fp = iters->apply(analysis::subscript_map(is, r.subs, ctx.params))
                           .intersect(analysis::index_set(*decl.array, ctx.params));
        const Set uncovered = fp.subtract(ext);
        if (uncovered.is_empty()) return;
        auto cw = concrete_witness(ctx, uncovered);
        Witness w;
        w.array = decl.array;
        w.stmt_id = id;
        if (cw) {
          w.rank = cw->first;
          w.element = cw->second;
          ctx.diag(Check::HaloSufficiency, Severity::Error,
                   "access footprint of " + r.to_string() + " in S" + std::to_string(id) +
                       " exceeds the declared overlap widths (" + decl.to_string() + ")",
                   std::move(w));
        } else {
          ctx.diag(Check::HaloSufficiency, Severity::Warning,
                   "footprint of " + r.to_string() + " in S" + std::to_string(id) +
                       " not symbolically inside the declared overlap (no counterexample)",
                   std::move(w));
        }
      };
      check_ref(a.lhs);
      for (const auto& r : a.rhs) check_ref(r);
    }
  }
}

// --------------------------------------------- check 4: schedule safety

void check_schedule_safety(Ctx& ctx) {
  const Schedule& s = ctx.plan.schedule;
  const std::size_t nmsg = s.messages.size();
  std::vector<int> sends(nmsg, 0), recvs(nmsg, 0);
  std::vector<int> send_rank(nmsg, -1), recv_rank(nmsg, -1);
  for (std::size_t r = 0; r < s.rank_ops.size(); ++r) {
    for (const auto& op : s.rank_ops[r]) {
      if (op.msg < 0 || static_cast<std::size_t>(op.msg) >= nmsg) {
        Witness w;
        w.message_id = op.msg;
        ctx.diag(Check::ScheduleSafety, Severity::Error,
                 "schedule op references unknown message", std::move(w));
        continue;
      }
      if (op.kind == ScheduleOp::Kind::Send) {
        ++sends[static_cast<std::size_t>(op.msg)];
        send_rank[static_cast<std::size_t>(op.msg)] = static_cast<int>(r);
      } else {
        ++recvs[static_cast<std::size_t>(op.msg)];
        recv_rank[static_cast<std::size_t>(op.msg)] = static_cast<int>(r);
      }
    }
  }
  for (std::size_t m = 0; m < nmsg; ++m) {
    ++ctx.report.checks_run;
    const Message& msg = s.messages[m];
    Witness w;
    w.message_id = msg.id;
    w.event_id = msg.event_id;
    w.array = msg.array;
    if (sends[m] == 0 && recvs[m] > 0) {
      w.rank = msg.to;
      ctx.diag(Check::ScheduleSafety, Severity::Error,
               "rank " + std::to_string(msg.to) + " waits for " + msg.to_string() +
                   " which is never sent — the mp backend would deadlock",
               std::move(w));
    } else if (recvs[m] == 0 && sends[m] > 0) {
      w.rank = msg.from;
      ctx.diag(Check::ScheduleSafety, Severity::Error,
               msg.to_string() + " is sent but never received", std::move(w));
    } else if (sends[m] > 1 || recvs[m] > 1) {
      ctx.diag(Check::ScheduleSafety, Severity::Error,
               msg.to_string() + " appears in the schedule more than once", std::move(w));
    } else if (sends[m] == 1 &&
               (send_rank[m] != msg.from || recv_rank[m] != msg.to)) {
      ctx.diag(Check::ScheduleSafety, Severity::Error,
               msg.to_string() + " is scheduled on the wrong ranks", std::move(w));
    }
  }

  // Wait-for graph: op -> next op of the same rank, send -> matching recv.
  // A receive blocks its rank until the matching send has been reached, so
  // any cycle through these edges is a guaranteed deadlock.
  std::vector<std::size_t> base(s.rank_ops.size() + 1, 0);
  for (std::size_t r = 0; r < s.rank_ops.size(); ++r)
    base[r + 1] = base[r] + s.rank_ops[r].size();
  Digraph g(base.back());
  std::vector<std::size_t> send_op(nmsg, SIZE_MAX), recv_op(nmsg, SIZE_MAX);
  for (std::size_t r = 0; r < s.rank_ops.size(); ++r) {
    for (std::size_t i = 0; i < s.rank_ops[r].size(); ++i) {
      const std::size_t v = base[r] + i;
      if (i + 1 < s.rank_ops[r].size()) g.add_edge(v, v + 1);
      const auto& op = s.rank_ops[r][i];
      if (op.msg < 0 || static_cast<std::size_t>(op.msg) >= nmsg) continue;
      (op.kind == ScheduleOp::Kind::Send ? send_op : recv_op)[static_cast<std::size_t>(
          op.msg)] = v;
    }
  }
  for (std::size_t m = 0; m < nmsg; ++m)
    if (send_op[m] != SIZE_MAX && recv_op[m] != SIZE_MAX) g.add_edge(send_op[m], recv_op[m]);
  ++ctx.report.checks_run;
  const SccResult scc = strongly_connected_components(g);
  for (const auto& comp : scc.members()) {
    if (comp.size() < 2) continue;
    std::vector<int> cycle;
    for (std::size_t v : comp) {
      // Map the op back to (rank, index) to recover its message id.
      std::size_t r = 0;
      while (r + 1 < base.size() && base[r + 1] <= v) ++r;
      const int m = s.rank_ops[r][v - base[r]].msg;
      if (std::find(cycle.begin(), cycle.end(), m) == cycle.end()) cycle.push_back(m);
    }
    Witness w;
    w.cycle = cycle;
    if (!cycle.empty()) w.message_id = cycle.front();
    ctx.diag(Check::ScheduleSafety, Severity::Error,
             "wait-for graph has a cycle over " + std::to_string(cycle.size()) +
                 " message(s) — guaranteed deadlock",
             std::move(w));
  }
}

// ----------------------------------------- check 5: dead-communication lint

void check_dead_comm(Ctx& ctx) {
  if (!ctx.opt.lint_dead_comm) return;
  std::uint64_t total_bytes = 0;
  for (const auto& ev : ctx.plan.plan.events) {
    if (ev.kind != EventKind::Fetch || ev.eliminated) continue;
    ++ctx.report.checks_run;
    const Set supplied = event_array_set(ev);
    Set used = Set::empty(ev.array->extents.size(), ctx.params);
    for (int cid : ev.consumers) {
      auto it = ctx.plan.cps.stmts.find(cid);
      if (it == ctx.plan.cps.stmts.end() || !it->second.stmt->is_assign()) continue;
      used = used.unite(nonlocal_read(ctx, it->second, ev.array));
    }
    // Fully concrete: the byte count needs per-rank enumeration anyway, and a
    // symbolic supplied − used difference can fragment badly when the event
    // data is a wide union. Enumeration is exhaustive for the configured grid.
    std::size_t elems = 0;
    std::optional<std::pair<int, std::vector<i64>>> cw;
    for (int q = 0; q < ctx.nprocs; ++q) {
      const std::vector<i64>& v = ctx.vals[static_cast<std::size_t>(q)];
      supplied.enumerate(v, [&](const std::vector<i64>& pt) {
        if (used.contains(pt, v)) return;
        ++elems;
        if (!cw) cw = std::make_pair(q, pt);
      });
    }
    if (elems == 0) continue;
    const std::size_t bytes = elems * sizeof(double);
    total_bytes += bytes;
    Witness w;
    w.array = ev.array;
    w.event_id = ev.id;
    w.stmt_id = ev.stmt_id;
    w.bytes = bytes;
    if (cw) {
      w.rank = cw->first;
      w.element = cw->second;
    }
    ctx.diag(Check::DeadComm, Severity::Warning,
             "fetch ev#" + std::to_string(ev.id) + " of " + ev.array->name + " carries " +
                 std::to_string(elems) + " element(s) no consumer reads",
             std::move(w));
    DHPF_COUNTER("verify.dead_comm_messages");
  }
  if (total_bytes > 0) DHPF_COUNTER_ADD("verify.dead_comm_bytes", total_bytes);
}

}  // namespace

Report check(const CompiledPlan& plan, const VerifyOptions& opt) {
  obs::ScopedTimer timer("verify.check");
  require(plan.prog != nullptr, "verify", "check: plan not bound (null program)");
  Ctx ctx{plan, opt, analysis::make_params(*plan.prog), plan.nprocs(), {}, {}, {}};
  for (int q = 0; q < ctx.nprocs; ++q)
    ctx.vals.push_back(analysis::param_values_for_rank(*plan.prog, q));

  std::map<const Array*, std::vector<const cp::StmtCp*>> writers;
  for (const auto& [id, sc] : plan.cps.stmts) {
    (void)id;
    if (sc.stmt->is_assign()) writers[sc.stmt->assign().lhs.array].push_back(&sc);
  }

  // Prefill the (statement, array) non-local read cache across the pass
  // driver: each entry is a pure function of the plan, and checks 1 and 5
  // both consult it. Slots land in the map serially in pair order, so the
  // cache (and every diagnostic derived from it) matches the serial run.
  {
    std::vector<std::pair<const cp::StmtCp*, const Array*>> pairs;
    for (const auto& [id, sc] : plan.cps.stmts) {
      (void)id;
      if (!sc.stmt->is_assign()) continue;
      std::vector<const Array*> seen;
      for (const auto& r : sc.stmt->assign().rhs)
        if (r.array->distributed() &&
            std::find(seen.begin(), seen.end(), r.array) == seen.end()) {
          seen.push_back(r.array);
          pairs.emplace_back(&sc, r.array);
        }
    }
    std::vector<std::optional<Set>> slots(pairs.size());
    exec::parallel_for(pairs.size(), [&](std::size_t i) {
      slots[i] = compute_nonlocal_read(ctx.params, *pairs[i].first, pairs[i].second);
    });
    for (std::size_t i = 0; i < pairs.size(); ++i)
      ctx.need_cache.emplace(
          std::make_pair(pairs[i].first->stmt->assign().id, pairs[i].second),
          std::move(*slots[i]));
  }

  check_read_coverage(ctx, writers);
  check_replica_consistency(ctx);
  check_halo_sufficiency(ctx);
  check_schedule_safety(ctx);
  check_dead_comm(ctx);

  DHPF_COUNTER_ADD("verify.checks", ctx.report.checks_run);
  if (!ctx.report.clean()) DHPF_COUNTER("verify.plans_rejected");
  return std::move(ctx.report);
}

Report check_or_throw(const CompiledPlan& plan, const VerifyOptions& opt) {
  Report r = check(plan, opt);
  for (const auto& d : r.diagnostics)
    if (d.severity == Severity::Error) throw VerifyError(d);
  return r;
}

}  // namespace dhpf::verify
