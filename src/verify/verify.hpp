// dhpf::verify — set-based static verification and linting of compiled
// SPMD plans.
//
// The compiler derives communication as set differences (paper §2, §7);
// this pass proves, in the same integer-set algebra but from the plan's
// *declared* artifacts, that the lowered program is safe to execute:
//
//   1. Read coverage     — per phase, reads − owned − received − locally
//                          produced == ∅ for the representative processor;
//                          a non-empty difference yields a concrete element
//                          tuple witness.
//   2. Replicated-write consistency — every statement instance executes on
//                          at least one rank, and non-owner writes either
//                          come from the §4.1/§4.2 partial-replication
//                          shape (owner-computes term included, replicas
//                          provably identical) or are written back to the
//                          owner; otherwise a cross-rank write-write race /
//                          lost update is flagged.
//   3. Halo sufficiency  — the declared overlap widths contain the access
//                          footprint of every localized loop.
//   4. Schedule safety   — every schedule message has exactly one matching
//                          send and receive, and the wait-for graph of the
//                          per-rank op lists is acyclic (support/scc), so
//                          an mp-backend deadlock is a compile-time error.
//   5. Dead communication lint — fetched payload no consumer's non-local
//                          read needs is reported as a warning with byte
//                          counts (also accumulated into dhpf::obs).
//
// Soundness direction: symbolic emptiness is exact when it answers "empty"
// (iset/set.hpp), so a clean report is trustworthy; a symbolically
// non-empty difference is confirmed by extracting a concrete witness
// (exact point enumeration) before it becomes an error — conservative
// non-emptiness without a witness is reported as a warning.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"
#include "verify/plan.hpp"

namespace dhpf::verify {

enum class Check {
  ReadCoverage,
  ReplicaConsistency,
  HaloSufficiency,
  ScheduleSafety,
  DeadComm,
};

enum class Severity { Error, Warning };

const char* to_string(Check c);
const char* to_string(Severity s);

/// Concrete counterexample attached to a diagnostic. Which fields are
/// meaningful depends on the check: element tuple + rank for coverage /
/// replica / halo violations, message id (and cycle) for schedule
/// violations, event id + bytes for dead communication.
struct Witness {
  const hpf::Array* array = nullptr;
  std::vector<iset::i64> element;  ///< array element tuple
  int rank = -1;                   ///< rank the violation manifests on
  int stmt_id = -1;
  int event_id = -1;               ///< comm::CommEvent::id
  int message_id = -1;             ///< Schedule Message::id
  std::vector<int> cycle;          ///< message ids of a wait-for cycle
  std::size_t bytes = 0;           ///< dead payload size

  [[nodiscard]] std::string to_string() const;
};

struct Diagnostic {
  Check check = Check::ReadCoverage;
  Severity severity = Severity::Error;
  std::string message;
  Witness witness;

  [[nodiscard]] std::string to_string() const;
};

/// Structured diagnostic as a throwable error: dhpf::Error extended with
/// severity and witness, for callers that want violations to propagate as
/// exceptions (check_or_throw).
class VerifyError : public dhpf::Error {
 public:
  explicit VerifyError(const Diagnostic& d)
      : dhpf::Error("verify", d.to_string()), diagnostic_(d) {}

  [[nodiscard]] const Diagnostic& diagnostic() const { return diagnostic_; }
  [[nodiscard]] Severity severity() const { return diagnostic_.severity; }
  [[nodiscard]] const Witness& witness() const { return diagnostic_.witness; }

 private:
  Diagnostic diagnostic_;
};

struct Report {
  std::vector<Diagnostic> diagnostics;
  std::size_t checks_run = 0;  ///< individual (statement/event/...) checks

  [[nodiscard]] bool clean() const { return errors() == 0; }
  [[nodiscard]] std::size_t errors() const;
  [[nodiscard]] std::size_t warnings() const;
  [[nodiscard]] std::vector<const Diagnostic*> by_check(Check c) const;

  [[nodiscard]] std::string to_string() const;
  /// Machine-readable form (embedded in dhpfc's --report-json document).
  [[nodiscard]] std::string to_json() const;
};

struct VerifyOptions {
  bool lint_dead_comm = true;
  /// Instance-enumeration budget for the concrete every-instance-executed
  /// check; statements above it are skipped with a warning.
  std::size_t max_instances = 200000;
};

/// Run all five check classes over a bound plan.
Report check(const CompiledPlan& plan, const VerifyOptions& opt = {});

/// As check(), but throws VerifyError on the first error-severity
/// diagnostic (warnings never throw).
Report check_or_throw(const CompiledPlan& plan, const VerifyOptions& opt = {});

}  // namespace dhpf::verify
