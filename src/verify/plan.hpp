// The verifier's view of a fully lowered SPMD program: the compiled plan
// (CP assignments + communication events) bound together with two derived
// declarations that the checks in verify.hpp validate against each other:
//
//   * OverlapDecl — the declared overlap (halo) widths per distributed
//     array dimension, the minimal widths whose extended ownership region
//     contains every access footprint (paper §4.2 overlap areas);
//   * Schedule   — the concrete per-rank send/recv schedule the plan
//     implies: one message per (event, sender, receiver) pair, and each
//     rank's program-ordered op list (sends before receives per event,
//     mirroring codegen's event execution).
//
// bind() derives both from a compile result. The fault-injection harness
// (mutate.hpp) edits copies of this structure; the checks must catch every
// such edit, which is why the declarations are explicit data rather than
// something recomputed on the fly inside the checks.
#pragma once

#include <vector>

#include "comm/comm.hpp"
#include "cp/select.hpp"
#include "hpf/ir.hpp"
#include "iset/set.hpp"

namespace dhpf::verify {

/// Declared overlap-area widths of one distributed array (per array dim;
/// zero on non-BLOCK dims). Derived as the minimal widths containing every
/// access footprint, so a clean compile verifies by construction and any
/// later shrink is a seeded defect.
struct OverlapDecl {
  const hpf::Array* array = nullptr;
  std::vector<int> width;

  [[nodiscard]] std::string to_string() const;
};

/// One point-to-point message of the SPMD schedule (aggregated over the
/// outer-loop instances of its event).
struct Message {
  int id = -1;        ///< schedule-unique message id (witness currency)
  int event_id = -1;  ///< CommEvent::id this message implements
  const hpf::Array* array = nullptr;
  int from = -1;
  int to = -1;
  std::size_t elems = 0;

  [[nodiscard]] std::string to_string() const;
};

/// A send or receive in one rank's program-ordered op list.
struct ScheduleOp {
  enum class Kind { Send, Recv };
  Kind kind = Kind::Send;
  int msg = -1;  ///< Message::id
};

/// The per-rank communication schedule implied by the plan: events in plan
/// order; within an event every rank first serves its sends, then blocks on
/// its receives (codegen::exec_event's order, which is what makes the
/// schedule deadlock-free — the acyclicity check proves it).
struct Schedule {
  std::vector<Message> messages;
  std::vector<std::vector<ScheduleOp>> rank_ops;  ///< indexed by rank

  [[nodiscard]] const Message& message(int id) const;
  [[nodiscard]] std::string to_string() const;
};

/// A fully lowered program bound for verification. Owns copies of the CP
/// assignment and communication plan so fault injection can edit them
/// without touching the compiler's output.
struct CompiledPlan {
  const hpf::Program* prog = nullptr;
  cp::CpResult cps;
  comm::CommPlan plan;
  std::vector<OverlapDecl> overlaps;
  Schedule schedule;

  [[nodiscard]] int nprocs() const;
};

/// Bind a compile result for verification: derive the overlap declarations
/// and the concrete message schedule.
CompiledPlan bind(const hpf::Program& prog, cp::CpResult cps, comm::CommPlan plan);

/// Re-derive only the schedule (after a mutation edited the plan's events).
Schedule derive_schedule(const hpf::Program& prog, const comm::CommPlan& plan);

/// Concrete owner rank of one element (HPF BLOCK semantics, row-major rank
/// linearization) — the schedule's and the witnesses' notion of ownership.
int owner_rank(const hpf::Program& prog, const hpf::Array& a,
               const std::vector<iset::i64>& elem);

/// The representative processor's owned region of `a` widened by the given
/// per-dim overlap widths (the slab  lb<g> − w ≤ x + off ≤ ub<g> + w  on
/// every BLOCK dim, intersected with the array bounds). The halo check
/// tests access footprints against this.
iset::Set extended_owned(const hpf::Array& a, const std::vector<int>& widths,
                         const iset::Params& params);

}  // namespace dhpf::verify
