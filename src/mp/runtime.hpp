// dhpf::mp — a real multi-threaded message-passing runtime.
//
// The second execution backend behind exec::Channel: where src/sim
// *simulates* a distributed-memory machine in virtual time, mp *executes*
// the same SPMD node programs on hardware, one OS thread per rank, with
// per-rank mailboxes (mutex + condition variable), tagged send/recv with
// wildcard source, nonblocking irecv/wait, and the shared collectives of
// exec/collectives.hpp. This is the moral equivalent of the paper's MPI
// runs on the 32-node SP2 (§8), scaled to a shared-memory node: the
// compiler's communication plans are validated under real concurrency and
// real (monotonic-clock) time instead of a cost model.
//
// Determinism: message order between one (source, tag) pair and a receiver
// is FIFO, exactly as on the simulator, so node programs whose receives
// name their sources — everything codegen emits, the NAS variants, and the
// collectives — produce bit-identical results on both backends. Wildcard
// (kAnySource) receives, by contrast, match in real arrival order, which
// depends on OS scheduling: *nondeterministic across sources* on mp,
// deterministic (earliest virtual arrival, ties by source rank) on sim.
//
// Liveness: CI must never hang. Every blocking receive carries a
// configurable timeout, and a watchdog thread detects global deadlock (all
// unfinished ranks blocked with no delivery progress across two scans) and
// aborts the run; both raise dhpf::Error instead of hanging.
//
// compute(flops) does not burn host cycles by default (ComputeMode::Noop):
// the kernels' real arithmetic is the work, and timings come from the
// monotonic clock. For machine-model emulation studies, Spin busy-waits
// and Sleep sleeps for the modelled duration (scaled by time_scale); Sleep
// lets P ranks overlap their modelled compute even on a single host core,
// which keeps measured-speedup experiments meaningful on small CI boxes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exec/channel.hpp"
#include "exec/task.hpp"

namespace dhpf::mp {

inline constexpr int kAnySource = exec::kAnySource;

/// How Channel::compute(flops)/elapse(s) behave on the real backend.
enum class ComputeMode {
  Noop,   ///< account modelled seconds only; no host time consumed
  Spin,   ///< busy-wait for the modelled duration * time_scale
  Sleep,  ///< sleep for the modelled duration * time_scale (overlaps ranks)
};

struct Options {
  ComputeMode compute_mode = ComputeMode::Noop;
  /// Cost model used to convert flops to seconds for Spin/Sleep and served
  /// by Channel::machine() for cost heuristics (e.g. pipeline tiling).
  exec::Machine machine = exec::Machine::sp2();
  /// Dilation factor applied to modelled compute time in Spin/Sleep modes.
  double time_scale = 1.0;
  /// Per-receive timeout in real seconds; a receive that waits longer
  /// raises dhpf::Error. <= 0 disables (the watchdog still guards CI).
  double recv_timeout_s = 30.0;
  /// Blocked-rank watchdog scan period in real seconds; <= 0 disables.
  /// Overridable at runtime via the DHPF_MP_WATCHDOG_MS environment
  /// variable (milliseconds; 0 disables) — see watchdog_period_from_env.
  double watchdog_period_s = 0.05;
};

/// Resolve the effective watchdog period: DHPF_MP_WATCHDOG_MS (a real
/// number of milliseconds; <= 0 disables the watchdog) when set and
/// parseable, otherwise `fallback`. Lets CI tighten the deadlock scan and
/// debuggers disable it without recompiling. Exposed for direct unit
/// testing; run() applies it to Options::watchdog_period_s.
double watchdog_period_from_env(double fallback);

/// Per-rank activity counters (real seconds where noted).
struct RankStats {
  std::size_t sends = 0;
  std::size_t recvs = 0;
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  double wait_seconds = 0.0;     ///< real time blocked in recv
  double compute_seconds = 0.0;  ///< *modelled* seconds via compute()/elapse()
};

struct Stats {
  double wall_seconds = 0.0;  ///< real elapsed time of the run
  std::size_t messages = 0;
  std::size_t bytes = 0;
  std::vector<RankStats> ranks;

  /// Real-time phase breakdown summed over ranks: for each phase label (see
  /// Channel::set_phase) the wall time ranks spent inside it, split into
  /// busy (executing) and wait (blocked in recv) seconds.
  struct PhaseRow {
    std::string phase;
    double busy = 0.0;
    double wait = 0.0;
  };
  std::vector<PhaseRow> phases;
};

/// Execute `body(channel)` once per rank, each rank on its own OS thread,
/// and return the real elapsed seconds. Throws dhpf::Error if any rank's
/// coroutine throws, a receive times out, or the watchdog detects deadlock.
///
/// Side effect: bumps dhpf::obs — counters mp.runs / mp.messages /
/// mp.bytes, per-rank gauges mp.rank<r>.{sends,recvs,wait_seconds}, and
/// timers mp.phase.<label> accumulating real busy seconds per phase.
double run(int nranks, const Options& opt,
           const std::function<exec::Task(exec::Channel&)>& body, Stats* stats_out = nullptr);

/// Convenience overload with default options.
double run(int nranks, const std::function<exec::Task(exec::Channel&)>& body,
           Stats* stats_out = nullptr);

}  // namespace dhpf::mp
