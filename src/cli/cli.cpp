#include "cli/cli.hpp"

#include <algorithm>
#include <sstream>

namespace dhpf::cli {

namespace {

OptionSpec flag(std::string name, std::string help, std::function<void(Options&)> set) {
  OptionSpec s;
  s.display = name;
  s.name = std::move(name);
  s.takes_value = false;
  s.help = std::move(help);
  s.apply = [set = std::move(set)](Options& o, const std::string&) {
    set(o);
    return true;
  };
  return s;
}

OptionSpec valued(std::string display, std::string name, std::string help,
                  std::function<bool(Options&, const std::string&)> apply) {
  OptionSpec s;
  s.display = std::move(display);
  s.name = std::move(name);
  s.takes_value = true;
  s.help = std::move(help);
  s.apply = std::move(apply);
  return s;
}

bool parse_int(const std::string& v, int lo, int hi, int& out) {
  try {
    out = std::stoi(v);
  } catch (const std::exception&) {
    return false;
  }
  return out >= lo && out <= hi;
}

std::vector<OptionSpec> make_table() {
  std::vector<OptionSpec> t;
  t.push_back(flag("--no-localize", "disable the §4.2 LOCALIZE partial replication",
                   [](Options& o) { o.sopt.localize = false; }));
  t.push_back(flag("--no-comm-sensitive", "disable the §5 communication-sensitive CP grouping",
                   [](Options& o) { o.sopt.comm_sensitive = false; }));
  t.push_back(flag("--no-interproc", "disable the §6 interprocedural CP selection",
                   [](Options& o) { o.sopt.interprocedural = false; }));
  t.push_back(flag("--no-availability", "disable the §7 data availability analysis",
                   [](Options& o) { o.copt.data_availability = false; }));
  t.push_back(valued("--priv=propagate|replicate|owner", "--priv",
                     "CP mode for privatizable (NEW) array definitions",
                     [](Options& o, const std::string& v) {
                       if (v == "propagate")
                         o.sopt.priv_mode = cp::PrivMode::Propagate;
                       else if (v == "replicate")
                         o.sopt.priv_mode = cp::PrivMode::Replicate;
                       else if (v == "owner")
                         o.sopt.priv_mode = cp::PrivMode::OwnerComputes;
                       else
                         return false;
                       return true;
                     }));
  t.push_back(flag("--run", "execute the SPMD program and check it against the serial result",
                   [](Options& o) { o.run = true; }));
  t.push_back(valued("--backend=sim|mp|shm", "--backend",
                     "execution backend for --run: virtual-time SP2 simulator, the real "
                     "multi-threaded message-passing runtime, or the shared-memory "
                     "threaded runtime",
                     [](Options& o, const std::string& v) {
                       return exec::parse_backend(v, o.xopt.backend);
                     }));
  t.push_back(flag("--verify",
                   "statically verify the compiled plan (read coverage, replica "
                   "consistency, halos, schedule, dead comm); violations exit 1",
                   [](Options& o) { o.verify = true; }));
  t.push_back(flag("--verify-selftest",
                   "run the fault-injection harness: seed defects into the plan and "
                   "require the verifier to catch every one",
                   [](Options& o) { o.verify_selftest = true; }));
  t.push_back(flag("--lint",
                   "run the source-level static analyzer (static races in INDEPENDENT "
                   "loops, uninitialized reads of local arrays, subscript bounds, dead "
                   "stores, distribution conformance) instead of compiling; "
                   "error-severity findings exit 2",
                   [](Options& o) { o.lint = true; }));
  t.push_back(flag("--lint-selftest",
                   "run the lint fault-injection harness: seed source-level defects "
                   "(dropped inits, widened subscripts, false INDEPENDENT, "
                   "misalignments, killed stores) and require the linter to catch "
                   "every one",
                   [](Options& o) { o.lint_selftest = true; }));
  t.push_back(flag("--model-report",
                   "print the analytic cost-model prediction for the compiled plan "
                   "(predicted wall time, per-statement and per-event costs)",
                   [](Options& o) { o.model_report = true; }));
  t.push_back(valued("--calibrate=FILE", "--calibrate",
                     "fit the cost model's alpha/beta/gamma from measured runs of "
                     "option-variants of the input (on --backend) and write the "
                     "calibration JSON to FILE",
                     [](Options& o, const std::string& v) {
                       if (v.empty()) return false;
                       o.calibrate_out = v;
                       return true;
                     }));
  t.push_back(valued("--calibration=FILE", "--calibration",
                     "load fitted model parameters from a calibration JSON (written "
                     "by --calibrate) instead of the machine defaults",
                     [](Options& o, const std::string& v) {
                       if (v.empty()) return false;
                       o.calibration_in = v;
                       return true;
                     }));
  t.push_back(flag("--tune",
                   "enumerate optimization-flag variants, prune with the verifier, "
                   "rank by the cost model, measure the top candidates (on "
                   "--backend) and report the best plan",
                   [](Options& o) { o.tune = true; }));
  t.push_back(valued("--tune-backend=sim|mp|shm", "--tune-backend",
                     "execution backend for --tune's (and --calibrate's) measured "
                     "runs; same as --backend",
                     [](Options& o, const std::string& v) {
                       return exec::parse_backend(v, o.xopt.backend);
                     }));
  t.push_back(valued("--tune-measure=K", "--tune-measure",
                     "measured confirmations for --tune beyond the default variant "
                     "(default 3; 0 ranks purely by prediction)",
                     [](Options& o, const std::string& v) {
                       try {
                         o.tune_measure = std::stoi(v);
                       } catch (const std::exception&) {
                         return false;
                       }
                       return o.tune_measure >= 0;
                     }));
  t.push_back(flag("--report", "print the structured compile report (pass times, metrics)",
                   [](Options& o) { o.report = true; }));
  t.push_back(valued("--report-json=FILE", "--report-json",
                     "write the compile (and, with --verify, verification) report as "
                     "JSON to FILE ('-' for stdout)",
                     [](Options& o, const std::string& v) {
                       if (v.empty()) return false;
                       o.report_json = v;
                       return true;
                     }));
  t.push_back(valued("--trace-out=FILE", "--trace-out",
                     "enable span tracing and write the merged Chrome-trace JSON "
                     "(compile passes plus, with --run --backend=mp|shm, per-rank "
                     "runtime spans) to FILE ('-' for stdout)",
                     [](Options& o, const std::string& v) {
                       if (v.empty()) return false;
                       o.trace_out = v;
                       return true;
                     }));
  t.push_back(flag("--profile",
                   "enable span tracing and print the aggregated self-time / "
                   "total-time profile; with --report-json the rows are embedded "
                   "under \"profile\"",
                   [](Options& o) { o.profile = true; }));
  t.push_back(valued("--fuzz=N", "--fuzz",
                     "run a differential fuzz campaign of N generated programs "
                     "(serial oracle vs sim, mp and shm backends, all optimization "
                     "variants, static verifier and cost-model cross-checks) "
                     "instead of compiling an input file",
                     [](Options& o, const std::string& v) {
                       try {
                         o.fuzz_count = std::stoi(v);
                       } catch (const std::exception&) {
                         return false;
                       }
                       return o.fuzz_count > 0;
                     }));
  t.push_back(valued("--fuzz-seed=S", "--fuzz-seed",
                     "campaign seed (default 1); the same seed reproduces the "
                     "same programs and the same report, byte for byte",
                     [](Options& o, const std::string& v) {
                       try {
                         o.fuzz_seed = std::stoull(v);
                       } catch (const std::exception&) {
                         return false;
                       }
                       return true;
                     }));
  t.push_back(flag("--fuzz-minimize",
                   "delta-debug failing cases down to minimal reproducers "
                   "before reporting them",
                   [](Options& o) { o.fuzz_minimize = true; }));
  t.push_back(valued("--fuzz-out=DIR", "--fuzz-out",
                     "write failing reproducers (.hpf plus a .txt failure "
                     "report) into DIR",
                     [](Options& o, const std::string& v) {
                       if (v.empty()) return false;
                       o.fuzz_out = v;
                       return true;
                     }));
  t.push_back(valued("--fuzz-corpus=DIR", "--fuzz-corpus",
                     "replay every .hpf reproducer in DIR through the "
                     "differential check (the regression-corpus gate)",
                     [](Options& o, const std::string& v) {
                       if (v.empty()) return false;
                       o.fuzz_corpus = v;
                       return true;
                     }));
  t.push_back(flag("--fuzz-quick",
                   "CI smoke settings: 2 grid shapes, a variant subset per "
                   "case and fewer mp runs",
                   [](Options& o) { o.fuzz_quick = true; }));
  t.push_back(valued("--serve=SOCK", "--serve",
                     "run as the compile daemon (dhpfd) on this Unix socket; "
                     "drains gracefully on SIGTERM/SIGINT",
                     [](Options& o, const std::string& v) {
                       if (v.empty()) return false;
                       o.serve_socket = v;
                       return true;
                     }));
  t.push_back(valued("--server=SOCK", "--server",
                     "send the request to a running daemon instead of "
                     "compiling in-process",
                     [](Options& o, const std::string& v) {
                       if (v.empty()) return false;
                       o.server_socket = v;
                       return true;
                     }));
  t.push_back(valued("--svc-workers=N", "--svc-workers",
                     "daemon worker threads (0 = hardware concurrency)",
                     [](Options& o, const std::string& v) {
                       return parse_int(v, 0, 256, o.svc_workers);
                     }));
  t.push_back(valued("--svc-cache=N", "--svc-cache",
                     "daemon result-cache capacity in entries (0 disables)",
                     [](Options& o, const std::string& v) {
                       return parse_int(v, 0, 1 << 20, o.svc_cache);
                     }));
  t.push_back(flag("--par-passes",
                   "fan independent per-statement/per-event set computations in "
                   "codegen, comm, verify and model across the pass thread pool "
                   "(same output, schedule-dependent iset.cache.* counters; also "
                   "DHPF_PAR_PASSES=1)",
                   [](Options& o) { o.par_passes = true; }));
  t.push_back(flag("--quiet", "suppress the program / CP / plan / SPMD listings",
                   [](Options& o) { o.quiet = true; }));
  t.push_back(flag("--help", "print this help and exit", [](Options& o) { o.help = true; }));
  return t;
}

}  // namespace

const std::vector<OptionSpec>& option_table() {
  static const std::vector<OptionSpec> table = make_table();
  return table;
}

std::string usage_text() {
  std::size_t width = 0;
  for (const auto& s : option_table()) width = std::max(width, s.display.size());
  std::ostringstream out;
  out << "usage: dhpfc [options] file.hpf\n\n"
         "Compile an HPF-lite program with the dHPF pipeline and print the\n"
         "selected computation partitionings, the communication plan, and the\n"
         "SPMD node program.\n\noptions:\n";
  for (const auto& s : option_table()) {
    out << "  " << s.display << std::string(width - s.display.size() + 2, ' ');
    // Wrap help text at ~72 columns, continuation lines aligned.
    const std::string pad(width + 4, ' ');
    std::istringstream words(s.help);
    std::string word;
    std::size_t col = width + 4;
    bool first = true;
    while (words >> word) {
      if (!first && col + 1 + word.size() > 78) {
        out << "\n" << pad;
        col = pad.size();
      } else if (!first) {
        out << " ";
        ++col;
      }
      out << word;
      col += word.size();
      first = false;
    }
    out << "\n";
  }
  out << "\nexit codes: 0 success, 1 compile/run/verification failure, 2 usage error\n"
         "            (--lint also exits 2 when error-severity findings exist)\n";
  return out.str();
}

ParseResult parse_args(const std::vector<std::string>& args) {
  ParseResult r;
  for (const std::string& arg : args) {
    if (arg.empty()) continue;
    if (arg[0] != '-') {
      if (!r.opts.input.empty()) {
        r.error = "unexpected extra argument: " + arg;
        return r;
      }
      r.opts.input = arg;
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    const OptionSpec* spec = nullptr;
    for (const auto& s : option_table())
      if (s.name == name) spec = &s;
    if (!spec) {
      r.error = "unknown option: " + arg;
      return r;
    }
    if (spec->takes_value != (eq != std::string::npos)) {
      r.error = spec->takes_value ? "option requires a value: " + arg
                                  : "option takes no value: " + arg;
      return r;
    }
    if (!spec->apply(r.opts, value)) {
      r.error = "bad value for " + name + ": " + value;
      return r;
    }
  }
  if (r.opts.input.empty() && !r.opts.help && r.opts.fuzz_count == 0 &&
      r.opts.fuzz_corpus.empty() && r.opts.serve_socket.empty())
    r.error = "missing input: file.hpf";
  return r;
}

}  // namespace dhpf::cli
