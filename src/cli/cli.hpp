// dhpfc's command-line surface as a library, so the flag set is testable.
//
// A single options table drives BOTH parsing and --help generation: each
// OptionSpec carries its display form, help text and the apply function the
// parser calls, and usage_text() is rendered from the same table. There is
// no second list to drift out of sync — a flag the parser accepts is, by
// construction, a flag --help documents (tests/cli_test.cpp asserts it).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "codegen/driver.hpp"
#include "codegen/spmd.hpp"

namespace dhpf::cli {

/// Everything dhpfc's flags can set.
struct Options {
  cp::SelectOptions sopt;
  comm::CommOptions copt;
  codegen::SpmdOptions xopt;
  bool run = false;
  bool quiet = false;
  bool report = false;
  bool help = false;
  bool verify = false;           ///< run the static verifier over the plan
  bool verify_selftest = false;  ///< run the fault-injection harness
  bool lint = false;             ///< run the source linter instead of compiling
  bool lint_selftest = false;    ///< run the lint fault-injection harness
  bool model_report = false;     ///< print the analytic cost-model prediction
  bool tune = false;             ///< run the variant autotuner
  int tune_measure = 3;          ///< measured confirmations beyond the default
  std::string calibrate_out;     ///< --calibrate FILE: fit + write calibration
  std::string calibration_in;    ///< --calibration FILE: load fitted params
  std::string report_json;       ///< write machine-readable report here ("-" = stdout)
  std::string trace_out;         ///< --trace-out FILE: write merged Chrome trace JSON
  bool profile = false;          ///< print the aggregated self-time span profile
  int fuzz_count = 0;            ///< --fuzz=N: run a differential fuzz campaign
  std::uint64_t fuzz_seed = 1;   ///< --fuzz-seed=S
  bool fuzz_minimize = false;    ///< shrink failing cases before reporting
  std::string fuzz_out;          ///< --fuzz-out=DIR: write failing reproducers
  std::string fuzz_corpus;       ///< --fuzz-corpus=DIR: replay a reproducer corpus
  bool fuzz_quick = false;       ///< smoke settings: fewer shapes/variants/mp runs
  std::string serve_socket;      ///< --serve=SOCK: run as the dhpfd compile daemon
  std::string server_socket;     ///< --server=SOCK: send the request to a daemon
  int svc_workers = 0;           ///< --svc-workers=N: daemon pool size (0 = auto)
  int svc_cache = 1024;          ///< --svc-cache=N: daemon cache entries (0 = off)
  bool par_passes = false;       ///< --par-passes: fan independent set computations
                                 ///< across the pass pool (exec::parallel_for)
  std::string input;             ///< positional file.hpf
};

/// One row of the options table.
struct OptionSpec {
  std::string display;  ///< e.g. "--priv=propagate|replicate|owner"
  std::string name;     ///< match key, e.g. "--priv" (value options match "--priv=")
  bool takes_value = false;
  std::string help;
  /// Applies the (possibly empty) value; returns false on a bad value.
  std::function<bool(Options&, const std::string&)> apply;
};

/// The table. Order is the order --help lists the flags in.
const std::vector<OptionSpec>& option_table();

/// Usage text rendered from the table (what --help prints and what usage
/// errors point at).
std::string usage_text();

struct ParseResult {
  Options opts;
  std::string error;  ///< empty on success

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parse argv (without argv[0]). A missing input file is an error unless
/// --help was given. Unknown options, bad values and extra positionals are
/// errors with the offending argument in `error`.
ParseResult parse_args(const std::vector<std::string>& args);

}  // namespace dhpf::cli
